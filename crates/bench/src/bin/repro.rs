//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p wavefuse-bench --bin repro --release -- all
//! cargo run -p wavefuse-bench --bin repro --release -- fig9a fig10
//! cargo run -p wavefuse-bench --bin repro --release -- \
//!     eval --trace out.trace.json --metrics out.prom
//! ```
//!
//! Subcommands: `fig2`, `table1`, `fig9a`, `fig9b`, `fig9c`, `fig10`,
//! `crossover`, `adaptive`, `ablation`, `quality`, `hybrid`, `levels`,
//! `throughput`, `timeline`, `bench`, `serve`, `eval`, `all`.
//!
//! The `bench` subcommand measures real wall-clock pipeline throughput
//! (frames/sec and ns/frame per backend, serial and on the worker pool,
//! with the measured per-phase split) and writes `BENCH_pipeline.json`
//! in the current directory; `--frames <n>` sets the timed frames per
//! configuration (default 64) and `--threads <n>` the worker count of
//! the threaded rows (default: host parallelism clamped to 2..=4).
//! `--frame-size <WxH>` changes the measured geometry (default `88x72`)
//! and `--depth <k>` requests depth-k software pipelining for the
//! threaded rows (serial rows always run at depth 1). `--matrix`
//! additionally records the NEON scaling curve — 1/2/4/8 threads x
//! {88x72, 640x480, 1920x1080} x depth {1,2,3} — as extra report rows.
//! `--no-columnar` disables the transpose-free columnar column passes so
//! the staged-transpose fallback can be measured; each report row records
//! the kernel name and the effective `columnar` setting. `--rule
//! choose-max|window-energy|weighted|activity-guided` selects the detail
//! fusion rule (default `window-energy`, the paper's 3x3 neighborhood
//! energy rule); the rule label is part of each row's identity key, so
//! rows measured under different rules gate independently.
//!
//! `bench --check <baseline.json>` additionally gates the fresh run
//! against a committed baseline report and exits non-zero when
//! `frames_per_second` drops — or `energy_mj_per_frame` /
//! `p99_ns_per_frame` climbs — beyond `--tolerance <pct>` (default 25).
//! A missing, empty, or corrupt baseline file degrades the gate to
//! warnings (the run still completes) so a fresh checkout can bootstrap
//! its own baseline.
//!
//! The `serve` subcommand measures multi-stream serving: `--streams <n>`
//! (default 64) independent fusion streams share one worker fleet
//! (`--threads`, same default as `bench`) with cross-stream batch
//! packing, each serving `--frames <n>` timed frames (default 32) after
//! a warm-up window, followed by the sequential one-engine-per-stream
//! baseline for the same budget. It prints aggregate fps, fairness,
//! energy per frame, and per-stream p50/p99 latency, then upserts a
//! `SERVE-<streams>` row into the `--bench-out` report (default
//! `BENCH_pipeline.json`, preserving existing rows) so the regression
//! gate covers serving; `--serve-out <path>` additionally writes the
//! full per-stream JSON report, and `--check`/`--tolerance` gate the
//! serve row like `bench` does.
//!
//! The `eval` subcommand runs an instrumented pipeline and exports its
//! telemetry: `--trace <path>` writes a Chrome trace (load it in Perfetto
//! or `chrome://tracing`), `--metrics <path>` writes a Prometheus text
//! exposition, `--jsonl <path>` writes the raw events as JSON Lines, and
//! `--frames <n>` sets the run length (default 20).
//! `--flight-record <path>` dumps the pipeline's per-frame flight
//! recorder as JSONL at `<path>` plus a Chrome trace on the modeled
//! clock at `<path>.trace.json`. The eval also reconciles the flight
//! recorder's per-frame energy sum against the pipeline's accumulated
//! total and fails when they disagree by more than 0.1%.

use std::process::ExitCode;

use wavefuse_bench::experiments::{self, Quantity};
use wavefuse_bench::{gate, report};
use wavefuse_trace::{export, JsonValue, ToJson};

const USAGE: &str = "usage: repro [fig2|table1|fig9a|fig9b|fig9c|fig10|crossover|adaptive|ablation|quality|hybrid|levels|throughput|timeline|bench|serve|eval|all]... \
[--trace <path>] [--metrics <path>] [--jsonl <path>] [--flight-record <path>] [--frames <n>] [--threads <n>] [--frame-size <WxH>] [--depth <k>] [--matrix] \
[--rule choose-max|window-energy|weighted|activity-guided] \
[--streams <n>] [--bench-out <path>] [--serve-out <path>] [--no-columnar] [--check <baseline.json>] [--tolerance <pct>]";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Split `--option value` pairs from subcommand words.
    let mut args: Vec<String> = Vec::new();
    let mut options: Vec<(String, String)> = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if name == "help" {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
            // Valueless flags.
            if name == "no-columnar" || name == "matrix" {
                options.push((name.to_string(), "true".to_string()));
                continue;
            }
            let Some(value) = it.next() else {
                eprintln!("option --{name} needs a value\n{USAGE}");
                return ExitCode::from(2);
            };
            options.push((name.to_string(), value.clone()));
        } else {
            args.push(a.clone());
        }
    }
    let opt = |name: &str| {
        options
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    };
    if args.is_empty() || args.iter().any(|a| a == "-h") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let wants = |name: &str| args.iter().any(|a| a == name || a == "all");
    let needs_matrix = ["fig9a", "fig9b", "fig9c", "fig10", "all"]
        .iter()
        .any(|n| args.iter().any(|a| a == n));

    let run = || -> Result<(), Box<dyn std::error::Error>> {
        if wants("fig2") {
            let phases = experiments::fig2_profile()?;
            println!("{}", report::render_profile(&phases));
        }
        if wants("table1") {
            let t12 = experiments::table1_resources(12);
            let t20 = experiments::table1_resources(20);
            println!("{}", report::render_table1(&t12, &t20));
        }
        if needs_matrix {
            eprintln!("collecting evaluation matrix (5 sizes x 3 backends x 10 frames)...");
            let matrix = experiments::collect_matrix()?;
            if wants("fig9a") {
                let s = experiments::fig9_series(&matrix, Quantity::Forward);
                println!(
                    "{}",
                    report::render_series("Fig. 9a — forward DT-CWT time", "seconds", &s)
                );
            }
            if wants("fig9b") {
                let s = experiments::fig9_series(&matrix, Quantity::Total);
                println!(
                    "{}",
                    report::render_series("Fig. 9b — total time taken", "seconds", &s)
                );
            }
            if wants("fig9c") {
                let s = experiments::fig9_series(&matrix, Quantity::Inverse);
                println!(
                    "{}",
                    report::render_series("Fig. 9c — inverse DT-CWT time", "seconds", &s)
                );
            }
            if wants("fig10") {
                let s = experiments::fig9_series(&matrix, Quantity::Energy);
                println!(
                    "{}",
                    report::render_series("Fig. 10 — total energy used", "millijoules", &s)
                );
            }
        }
        if wants("crossover") {
            let c = experiments::crossover_report()?;
            println!("{}", report::render_crossovers(&c));
        }
        if wants("adaptive") {
            eprintln!("running adaptive-policy comparison (6 policies x 20 frames)...");
            let a = experiments::adaptive_comparison()?;
            println!("{}", report::render_adaptive(&a));
        }
        if wants("ablation") {
            let rows = experiments::ablation_report()?;
            println!("{}", report::render_ablation(&rows));
        }
        if wants("hybrid") {
            eprintln!("running hybrid routing study...");
            let rows = experiments::hybrid_comparison()?;
            println!("{}", report::render_hybrid(&rows));
        }
        if wants("levels") {
            eprintln!("running decomposition-level sweep...");
            let rows = experiments::levels_sweep()?;
            println!("{}", report::render_levels(&rows));
        }
        if wants("throughput") {
            eprintln!("running throughput report...");
            let rows = experiments::throughput_report()?;
            println!("{}", report::render_throughput(&rows));
        }
        if wants("timeline") {
            use wavefuse_zynq::{timeline, ZynqConfig};
            let cfg = ZynqConfig::default();
            println!(
                "## PS/PL activity, five 88-sample rows through the double-buffered path (Fig. 5)"
            );
            let events = timeline::double_buffer_timeline(5, 88, &cfg);
            println!("{}", timeline::render_ascii(&events, 100));
        }
        if wants("quality") {
            eprintln!("running fusion-quality comparison...");
            let rows = experiments::quality_comparison(88, 72)?;
            println!("{}", report::render_quality(&rows));
        }
        if wants("bench") {
            let frames: usize = match opt("frames").as_deref() {
                Some(v) => v.parse().map_err(|_| format!("bad --frames '{v}'"))?,
                None => 64,
            };
            let threads: Option<usize> = match opt("threads").as_deref() {
                Some(v) => Some(v.parse().map_err(|_| format!("bad --threads '{v}'"))?),
                None => None,
            };
            let columnar = opt("no-columnar").is_none();
            let frame_size: (usize, usize) = match opt("frame-size").as_deref() {
                Some(v) => {
                    let parse = || -> Option<(usize, usize)> {
                        let (w, h) = v.split_once(['x', 'X'])?;
                        Some((w.trim().parse().ok()?, h.trim().parse().ok()?))
                    };
                    parse().ok_or_else(|| format!("bad --frame-size '{v}' (expected WxH)"))?
                }
                None => (88, 72),
            };
            let depth: usize = match opt("depth").as_deref() {
                Some(v) => v.parse().map_err(|_| format!("bad --depth '{v}'"))?,
                None => 1,
            };
            let rule = match opt("rule").as_deref() {
                Some(v) => experiments::parse_rule(v).ok_or_else(|| {
                    format!(
                        "bad --rule '{v}' (expected choose-max, window-energy, \
                         weighted, or activity-guided)"
                    )
                })?,
                None => wavefuse_core::rules::FusionRule::WindowEnergy { radius: 1 },
            };
            eprintln!("measuring pipeline throughput ({frames} timed frames per configuration)...");
            let bench = if opt("matrix").is_some() {
                eprintln!(
                    "recording NEON scaling matrix (threads x frame sizes x pipeline depths)..."
                );
                experiments::pipeline_bench_with_matrix(frames, threads, columnar, rule)?
            } else {
                experiments::pipeline_bench(frames, threads, columnar, frame_size, depth, rule)?
            };
            println!("{}", report::render_bench(&bench));
            let path = opt("bench-out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());
            std::fs::write(&path, format!("{}\n", bench.to_json().render()))?;
            eprintln!("wrote throughput benchmark to {path}");
            if let Some(baseline_path) = opt("check") {
                gate_report(&bench, &baseline_path, opt("tolerance").as_deref())?;
            }
        }
        if wants("serve") {
            let streams: usize = match opt("streams").as_deref() {
                Some(v) => v.parse().map_err(|_| format!("bad --streams '{v}'"))?,
                None => 64,
            };
            let frames: usize = match opt("frames").as_deref() {
                Some(v) => v.parse().map_err(|_| format!("bad --frames '{v}'"))?,
                None => 32,
            };
            let threads: Option<usize> = match opt("threads").as_deref() {
                Some(v) => Some(v.parse().map_err(|_| format!("bad --threads '{v}'"))?),
                None => None,
            };
            let columnar = opt("no-columnar").is_none();
            eprintln!(
                "serving {streams} streams ({frames} timed frames each) on a shared fleet..."
            );
            let serve = experiments::serve_bench(streams, frames, threads, columnar)?;
            println!("{}", report::render_serve(&serve));
            if let Some(path) = opt("serve-out") {
                std::fs::write(
                    &path,
                    format!("{}\n", experiments::serve_json(&serve).render()),
                )?;
                eprintln!("wrote serve report to {path}");
            }
            let path = opt("bench-out").unwrap_or_else(|| "BENCH_pipeline.json".to_string());
            upsert_serve_row(&path, &serve)?;
            eprintln!(
                "upserted SERVE-{} row into {path} (other rows preserved)",
                serve.streams
            );
            if let Some(baseline_path) = opt("check") {
                let mini = experiments::BenchReport {
                    frame_size: (88, 72),
                    levels: wavefuse_bench::paper::LEVELS,
                    scene_seed: experiments::SCENE_SEED,
                    warmup_frames: experiments::BENCH_WARMUP_FRAMES,
                    frames,
                    reps: 1,
                    rows: vec![experiments::serve_row(&serve)],
                };
                gate_report(&mini, &baseline_path, opt("tolerance").as_deref())?;
            }
        }
        if wants("eval") {
            let frames: usize = match opt("frames").as_deref() {
                Some(v) => v.parse().map_err(|_| format!("bad --frames '{v}'"))?,
                None => 20,
            };
            eprintln!("running instrumented evaluation ({frames} frames)...");
            let eval = experiments::telemetry_eval(frames)?;
            println!("{}", report::render_telemetry(&eval));
            if let Some(path) = opt("trace") {
                std::fs::write(&path, export::chrome_trace(eval.telemetry.tracer()))?;
                eprintln!("wrote Chrome trace to {path} (load in Perfetto)");
            }
            if let Some(path) = opt("metrics") {
                std::fs::write(&path, export::prometheus_text(eval.telemetry.metrics()))?;
                eprintln!("wrote Prometheus metrics to {path}");
            }
            if let Some(path) = opt("jsonl") {
                std::fs::write(&path, export::jsonl(eval.telemetry.tracer()))?;
                eprintln!("wrote JSONL events to {path}");
            }
            if let Some(path) = opt("flight-record") {
                std::fs::write(&path, eval.flight.jsonl())?;
                let trace_path = format!("{path}.trace.json");
                std::fs::write(&trace_path, eval.flight.chrome_trace())?;
                eprintln!(
                    "wrote flight recorder ({} frames) to {path} and {trace_path}",
                    eval.flight.len()
                );
            }
            if eval.energy_error > 0.001 {
                return Err(format!(
                    "flight-recorder energy {:.4} mJ disagrees with pipeline total {:.4} mJ \
                     by {:.4}% (limit 0.1%)",
                    eval.flight_energy_mj,
                    eval.stats.energy_mj,
                    eval.energy_error * 100.0
                )
                .into());
            }
            if eval.max_phase_error > 0.01 {
                return Err(format!(
                    "trace/stats phase disagreement {:.3}% exceeds 1%",
                    eval.max_phase_error * 100.0
                )
                .into());
            }
        }
        Ok(())
    };

    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Gates `current` against the baseline file, printing the outcome. A
/// missing/empty/corrupt baseline degrades to warnings; a genuine metric
/// regression beyond the tolerance is an error.
fn gate_report(
    current: &experiments::BenchReport,
    baseline_path: &str,
    tolerance: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let tolerance: f64 = match tolerance {
        Some(v) => {
            v.parse::<f64>()
                .map_err(|_| format!("bad --tolerance '{v}'"))?
                / 100.0
        }
        None => 0.25,
    };
    let (baseline, warning) = gate::load_baseline(baseline_path);
    if let Some(w) = warning {
        eprintln!("warning: {w}");
    }
    let outcome = gate::check_against_baseline(current, &baseline, tolerance);
    println!("{}", gate::render_gate(&outcome));
    if !outcome.passed() {
        return Err(format!(
            "bench regression gate failed: {} metric(s) regressed beyond ±{:.0}% \
             of {baseline_path}",
            outcome.regressions(),
            tolerance * 100.0
        )
        .into());
    }
    Ok(())
}

/// Replaces (or appends) the `SERVE-<streams>` row matching this run's
/// `(backend, threads, columnar)` identity in the bench report at
/// `path`, preserving every other row. A missing or unreadable report
/// starts from an empty `{"rows": []}` document. The file is always
/// written back newline-terminated.
fn upsert_serve_row(
    path: &str,
    serve: &experiments::ServeBench,
) -> Result<(), Box<dyn std::error::Error>> {
    let row = experiments::serve_row(serve).to_json();
    let label = format!("SERVE-{}", serve.streams);
    let (doc, _) = gate::load_baseline(path);
    let mut pairs = match doc {
        JsonValue::Obj(pairs) => pairs,
        _ => Vec::new(),
    };
    if !pairs.iter().any(|(k, _)| k == "rows") {
        pairs.push(("rows".to_string(), JsonValue::Arr(Vec::new())));
    }
    for (key, value) in &mut pairs {
        if key != "rows" {
            continue;
        }
        if let JsonValue::Arr(rows) = value {
            rows.retain(|r| {
                !(r.get("backend").and_then(JsonValue::as_str) == Some(label.as_str())
                    && r.get("threads").and_then(JsonValue::as_f64) == Some(serve.threads as f64)
                    && r.get("columnar")
                        .map(|c| matches!(c, JsonValue::Bool(b) if *b == serve.columnar))
                        == Some(true))
            });
            rows.push(row.clone());
        } else {
            *value = JsonValue::Arr(vec![row.clone()]);
        }
    }
    std::fs::write(path, format!("{}\n", JsonValue::Obj(pairs).render()))
        .map_err(|e| format!("cannot write {path}: {e}").into())
}

//! The paper's reported reference values, for side-by-side comparison.
//!
//! Exact numbers come from the text of §VII; per-size series values are not
//! tabulated in the paper (only plotted), so the series comparisons are
//! against the stated ratios and crossover intervals.

/// The five evaluation frame sizes of Figs. 9–10.
pub const PAPER_SIZES: [(usize, usize); 5] = [(32, 24), (35, 35), (40, 40), (64, 48), (88, 72)];

/// Frames per profiled run ("10 input frames were decomposed, fused and
/// reconstructed continuously").
pub const FRAMES_PER_RUN: usize = 10;

/// Decomposition depth used throughout the evaluation.
pub const LEVELS: usize = 3;

/// Paper: forward DT-CWT enhancement at 88x72, FPGA vs ARM (55.6 %).
pub const FWD_FPGA_ENHANCEMENT: f64 = 0.556;
/// Paper: forward enhancement at 88x72, NEON vs ARM (10 %).
pub const FWD_NEON_ENHANCEMENT: f64 = 0.10;
/// Paper: inverse enhancement at 88x72, FPGA vs ARM (60.6 %).
pub const INV_FPGA_ENHANCEMENT: f64 = 0.606;
/// Paper: inverse enhancement at 88x72, NEON vs ARM (16 %).
pub const INV_NEON_ENHANCEMENT: f64 = 0.16;
/// Paper: total-time enhancement at 88x72, FPGA vs ARM (48.1 %).
pub const TOTAL_FPGA_ENHANCEMENT: f64 = 0.481;
/// Paper: total-time enhancement at 88x72, NEON vs ARM (8 %).
pub const TOTAL_NEON_ENHANCEMENT: f64 = 0.08;
/// Paper: total-energy saving at 88x72, FPGA vs ARM (46.3 %).
pub const ENERGY_FPGA_SAVING: f64 = 0.463;
/// Paper: total-energy saving at 88x72, NEON vs ARM (8 %).
pub const ENERGY_NEON_SAVING: f64 = 0.08;
/// Paper: FPGA forward degradation vs NEON at 32x24 (36.4 %).
pub const FWD_FPGA_DEGRADATION_32X24: f64 = 0.364;
/// Paper: extra board power with the PL engine active (+19.2 mW, +3.6 %).
pub const FPGA_POWER_INCREMENT_W: f64 = 0.0192;

/// Paper: forward-time breaking point lies strictly between these square
/// frame edges.
pub const FWD_CROSSOVER_EDGES: (usize, usize) = (35, 40);
/// Paper: total-time and energy breaking points lie strictly between these
/// square frame edges ("between 40x40 and 64x48").
pub const TOTAL_CROSSOVER_EDGES: (usize, usize) = (40, 64);

/// Paper Table I: wavelet-engine utilization on the xc7z020.
pub const TABLE1_UTILIZATION: [(&str, u64, u64, u64); 4] = [
    ("Registers", 23_412, 106_400, 22),
    ("LUTs", 17_405, 53_200, 32),
    ("Slices", 7_890, 13_300, 59),
    ("BUFG", 3, 32, 9),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_internally_consistent() {
        // Energy saving ≈ 1 - (1 - total saving) * (1 + power increment).
        let implied = 1.0 - (1.0 - TOTAL_FPGA_ENHANCEMENT) * 1.036;
        assert!(
            (implied - ENERGY_FPGA_SAVING).abs() < 0.03,
            "implied {implied}"
        );
        assert_eq!(PAPER_SIZES.len(), 5);
        assert!(FWD_CROSSOVER_EDGES.0 < FWD_CROSSOVER_EDGES.1);
    }
}

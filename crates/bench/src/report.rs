//! Plain-text table rendering for the `repro` binary.

use crate::experiments::{
    AblationRow, BenchReport, CrossoverReport, HybridRow, LevelsRow, PolicyOutcome, QualityRow,
    ResourceRow, SeriesRow, ServeBench, ThroughputRow,
};
use wavefuse_core::Backend;

/// Renders a Fig. 9/10-style series table with per-size mode ratios.
pub fn render_series(title: &str, unit: &str, rows: &[SeriesRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:>8} | {:>10} {:>10} {:>10} | {:>9} {:>9}\n",
        "size", "ARM", "ARM+NEON", "ARM+FPGA", "NEON/ARM", "FPGA/ARM"
    ));
    out.push_str(&"-".repeat(68));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>8} | {:>10.4} {:>10.4} {:>10.4} | {:>9.3} {:>9.3}\n",
            format!("{}x{}", r.size.0, r.size.1),
            r.arm,
            r.neon,
            r.fpga,
            r.neon / r.arm,
            r.fpga / r.arm
        ));
    }
    out.push_str(&format!("(values in {unit}, ten fused frames per cell)\n"));
    out
}

/// Renders the Fig. 2 profile bars.
pub fn render_profile(phases: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str("## Fig. 2 — profile of fusing two input images (ARM only)\n");
    for (name, pct) in phases {
        let bar = "#".repeat((pct / 2.0).round() as usize);
        out.push_str(&format!("{name:>18} {pct:5.1}% {bar}\n"));
    }
    out
}

/// Renders Table I next to the paper's reported values.
pub fn render_table1(ours_12: &[ResourceRow], deployed_20: &[ResourceRow]) -> String {
    let mut out = String::new();
    out.push_str("## Table I — wavelet engine complexity (xc7z020clg484-1)\n");
    out.push_str(&format!(
        "{:>10} | {:>9} {:>9} {:>4} | {:>9} {:>4} | {:>16}\n",
        "resource", "available", "12-tap", "%", "20-tap", "%", "paper (12-tap)"
    ));
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for (row12, row20) in ours_12.iter().zip(deployed_20) {
        let paper = crate::paper::TABLE1_UTILIZATION
            .iter()
            .find(|(n, _, _, _)| *n == row12.resource)
            .expect("paper row");
        out.push_str(&format!(
            "{:>10} | {:>9} {:>9} {:>3}% | {:>9} {:>3}% | {:>10} ({:>2}%)\n",
            row12.resource,
            row12.available,
            row12.used,
            row12.percent,
            row20.used,
            row20.percent,
            paper.1,
            paper.3
        ));
    }
    out
}

/// Renders the crossover report with the paper's intervals.
pub fn render_crossovers(c: &CrossoverReport) -> String {
    let fmt = |e: Option<usize>| e.map_or("none".into(), |v| format!("{v}x{v}"));
    format!(
        "## Breaking points (smallest square frame where ARM+FPGA beats ARM+NEON)\n\
         forward transform : {:>7}   (paper: between 35x35 and 40x40)\n\
         inverse transform : {:>7}   (paper: above 40x40)\n\
         total time        : {:>7}   (paper: between 40x40 and 64x48)\n\
         total energy      : {:>7}   (paper: between 40x40 and 64x48)\n",
        fmt(c.forward_edge),
        fmt(c.inverse_edge),
        fmt(c.total_edge),
        fmt(c.energy_edge),
    )
}

/// Renders the adaptive-policy comparison.
pub fn render_adaptive(outcomes: &[PolicyOutcome]) -> String {
    let mut out = String::new();
    out.push_str("## Adaptive execution over a mixed-size workload (20 frames, 5 sizes)\n");
    out.push_str(&format!(
        "{:>26} | {:>9} {:>11} | {:>14}\n",
        "policy", "time (s)", "energy (mJ)", "ARM/NEON/FPGA"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for o in outcomes {
        out.push_str(&format!(
            "{:>26} | {:>9.4} {:>11.2} | {:>4}/{:>4}/{:>4}\n",
            o.policy,
            o.total_s,
            o.energy_mj,
            o.backend_usage[Backend::Arm],
            o.backend_usage[Backend::Neon],
            o.backend_usage[Backend::Fpga]
        ));
    }
    out
}

/// Renders the telemetry self-check: trace-derived per-phase time against
/// the pipeline's own accumulators, plus counter/statistic agreement.
pub fn render_telemetry(eval: &crate::experiments::TelemetryEval) -> String {
    let mut out = String::new();
    out.push_str("## Telemetry self-check (trace vs pipeline statistics)\n");
    out.push_str(&format!(
        "{:>10} | {:>12} {:>12} | {:>9}\n",
        "phase", "trace (s)", "stats (s)", "error"
    ));
    out.push_str(&"-".repeat(52));
    out.push('\n');
    for (phase, trace_s, stat_s) in &eval.phase_check {
        let err = (trace_s - stat_s).abs() / stat_s.max(1e-12);
        out.push_str(&format!(
            "{phase:>10} | {trace_s:>12.6} {stat_s:>12.6} | {:>8.4}%\n",
            err * 100.0
        ));
    }
    let s = &eval.stats;
    out.push_str(&format!(
        "frames {} | backend use ARM/NEON/FPGA/hybrid {}/{}/{}/{} | gate drops {}\n",
        s.frames,
        s.backend_usage[Backend::Arm],
        s.backend_usage[Backend::Neon],
        s.backend_usage[Backend::Fpga],
        s.backend_usage[Backend::Hybrid],
        s.gate_drops,
    ));
    out.push_str(&format!(
        "energy {:.2} mJ | trace events {} (dropped {}) | max phase error {:.4}%\n",
        s.energy_mj,
        eval.telemetry.tracer().len(),
        eval.telemetry.tracer().dropped(),
        eval.max_phase_error * 100.0,
    ));
    out.push_str(&format!(
        "flight recorder {} frames{} | per-frame energy sum {:.2} mJ | reconciliation error {:.4}%\n",
        eval.flight.len(),
        if eval.flight.wrapped() {
            " (wrapped)"
        } else {
            ""
        },
        eval.flight_energy_mj,
        eval.energy_error * 100.0,
    ));
    out
}

/// Renders the design-choice ablations.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str("## Ablation — FPGA path design choices (ten-frame 88x72 forward phase)\n");
    for r in rows {
        out.push_str(&format!(
            "{:>45} : {:>8.4} s  ({:.2}x)\n",
            r.configuration, r.forward_s, r.slowdown
        ));
    }
    out
}

/// Renders the decomposition-level sweep.
pub fn render_levels(rows: &[LevelsRow]) -> String {
    let mut out = String::new();
    out.push_str("## Decomposition-level sweep at 88x72 (seconds per fused frame)\n");
    out.push_str(&format!(
        "{:>6} | {:>9} {:>9} {:>9} {:>9} | {:>8}\n",
        "levels", "ARM", "NEON", "FPGA", "hybrid", "LL size"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>6} | {:>9.5} {:>9.5} {:>9.5} {:>9.5} | {:>8}\n",
            r.levels,
            r.arm_s,
            r.neon_s,
            r.fpga_s,
            r.hybrid_s,
            format!("{}x{}", r.ll_dims.0, r.ll_dims.1)
        ));
    }
    out
}

/// Renders the hybrid per-row routing study.
pub fn render_hybrid(rows: &[HybridRow]) -> String {
    let mut out = String::new();
    out.push_str("## Hybrid per-row NEON/FPGA routing (extension; seconds per fused frame)\n");
    out.push_str(&format!(
        "{:>8} | {:>9} {:>9} {:>9} | {:>7} | rows simd/fpga\n",
        "size", "NEON", "FPGA", "hybrid", "winner"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for r in rows {
        let best = r.neon_s.min(r.fpga_s).min(r.hybrid_s);
        let winner = if best == r.hybrid_s {
            "hybrid"
        } else if best == r.fpga_s {
            "FPGA"
        } else {
            "NEON"
        };
        out.push_str(&format!(
            "{:>8} | {:>9.5} {:>9.5} {:>9.5} | {:>7} | {}/{}\n",
            format!("{}x{}", r.size.0, r.size.1),
            r.neon_s,
            r.fpga_s,
            r.hybrid_s,
            winner,
            r.rows_simd,
            r.rows_fpga
        ));
    }
    out
}

/// Renders the throughput report.
pub fn render_throughput(rows: &[ThroughputRow]) -> String {
    let mut out = String::new();
    out.push_str("## Modeled fusion throughput (frames/second)\n");
    out.push_str(&format!(
        "{:>8} | {:>8} {:>8} {:>8} {:>8}\n",
        "size", "ARM", "NEON", "FPGA", "hybrid"
    ));
    out.push_str(&"-".repeat(48));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>8} | {:>8.1} {:>8.1} {:>8.1} {:>8.1}\n",
            format!("{}x{}", r.size.0, r.size.1),
            r.fps[0],
            r.fps[1],
            r.fps[2],
            r.fps[3]
        ));
    }
    out
}

/// Renders the measured wall-clock throughput benchmark.
pub fn render_bench(bench: &BenchReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Measured pipeline throughput ({} levels, best of {} windows, {} timed frames at {}x{})\n",
        bench.levels, bench.reps, bench.frames, bench.frame_size.0, bench.frame_size.1
    ));
    out.push_str(&format!(
        "{:>8} | {:>16} | {:>13} | {:>9} {:>7} {:>5} | {:>10} {:>10} {:>12} {:>12} | {:>9} {:>8} | {:>14}\n",
        "backend",
        "kernel",
        "rule",
        "size",
        "threads",
        "depth",
        "fps",
        "mean fps",
        "p50 ns",
        "p99 ns",
        "mJ/frame",
        "fps/W",
        "pool hit/miss"
    ));
    out.push_str(&"-".repeat(154));
    out.push('\n');
    for r in &bench.rows {
        out.push_str(&format!(
            "{:>8} | {:>16} | {:>13} | {:>9} {:>7} {:>5} | {:>10.1} {:>10.1} {:>12.0} {:>12.0} | {:>9.3} {:>8.1} | {:>8}/{}\n",
            r.backend,
            if r.columnar {
                r.kernel.clone()
            } else {
                format!("{}*", r.kernel)
            },
            r.rule,
            format!("{}x{}", r.frame_size.0, r.frame_size.1),
            r.threads,
            r.depth,
            r.frames_per_second,
            r.mean_frames_per_second,
            r.p50_ns_per_frame,
            r.p99_ns_per_frame,
            r.energy_mj_per_frame,
            r.fps_per_watt,
            r.pool_hits,
            r.pool_misses
        ));
    }
    if bench.rows.iter().any(|r| !r.columnar) {
        out.push_str("* columnar column passes disabled (staged-transpose fallback)\n");
    }
    out
}

/// Renders a multi-stream serving window: fleet-level aggregates, the
/// sequential baseline it beats, and the per-stream breakdown.
pub fn render_serve(bench: &ServeBench) -> String {
    let r = &bench.report;
    let mut out = String::new();
    out.push_str(&format!(
        "## Multi-stream serving: {} streams x {} frames on a shared {}-thread fleet{}\n",
        r.streams,
        bench.frames_per_stream,
        r.threads,
        if r.columnar { "" } else { " (columnar off)" }
    ));
    out.push_str(&format!(
        "aggregate {:.1} fps over {:.3} s wall | sequential baseline {:.1} fps over {:.3} s | speedup {:.2}x\n",
        r.aggregate_fps, r.wall_s, bench.sequential_fps, bench.sequential_wall_s, bench.speedup
    ));
    out.push_str(&format!(
        "fairness (min/max stream fps) {:.3} | energy {:.3} mJ/frame | drops {} | plan cache {} plans, {} hits | qos infeasible {}\n",
        r.fairness,
        r.energy_mj_per_frame,
        r.total_drops,
        r.plan_cache_entries,
        r.plan_cache_hits,
        r.qos_infeasible
    ));
    out.push_str(&format!(
        "{:>6} | {:>8} | {:>9} {:>6} {:>5} | {:>8} {:>5} {:>6} | {:>8} {:>10} {:>10} | {:>9}\n",
        "stream",
        "backend",
        "size",
        "levels",
        "depth",
        "frames",
        "drops",
        "missed",
        "fps",
        "p50 ms",
        "p99 ms",
        "mJ/frame"
    ));
    out.push_str(&"-".repeat(110));
    out.push('\n');
    for s in &r.per_stream {
        out.push_str(&format!(
            "{:>6} | {:>8} | {:>9} {:>6} {:>5} | {:>8} {:>5} {:>6} | {:>8.1} {:>10.3} {:>10.3} | {:>9.3}\n",
            s.stream,
            s.backend,
            format!("{}x{}", s.frame_size.0, s.frame_size.1),
            s.levels,
            s.depth,
            s.frames,
            s.drops,
            s.deadline_misses,
            s.fps,
            s.p50_latency_s * 1e3,
            s.p99_latency_s * 1e3,
            s.energy_mj_per_frame
        ));
    }
    out
}

/// Renders the fusion-quality comparison.
pub fn render_quality(rows: &[QualityRow]) -> String {
    let mut out = String::new();
    out.push_str("## Fusion quality at 88x72 (higher is better)\n");
    out.push_str(&format!(
        "{:>30} | {:>8} {:>8} {:>8} {:>8}\n",
        "method", "entropy", "spatial", "Q^AB/F", "MI"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>30} | {:>8.3} {:>8.4} {:>8.3} {:>8.3}\n",
            r.method, r.entropy, r.spatial_frequency, r.qabf, r.mutual_information
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_render_contains_all_sizes() {
        let rows = vec![
            SeriesRow {
                size: (32, 24),
                arm: 0.2,
                neon: 0.18,
                fpga: 0.25,
            },
            SeriesRow {
                size: (88, 72),
                arm: 1.7,
                neon: 1.5,
                fpga: 0.9,
            },
        ];
        let s = render_series("Fig. 9a", "seconds", &rows);
        assert!(s.contains("32x24") && s.contains("88x72"));
        assert!(s.contains("0.529"), "ratio column rendered: {s}");
    }

    #[test]
    fn crossover_render_handles_none() {
        let s = render_crossovers(&CrossoverReport {
            forward_edge: Some(39),
            inverse_edge: None,
            total_edge: Some(41),
            energy_edge: Some(41),
        });
        assert!(s.contains("39x39"));
        assert!(s.contains("none"));
    }
}

//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§VII) from the wavefuse implementation.
//!
//! Each experiment has a function here returning structured rows; the
//! `repro` binary renders them next to the paper's reported values. The
//! Criterion benches in `benches/` measure the *host-side* performance of
//! the real kernels over the same workload matrix.
//!
//! | experiment | paper artifact | function |
//! |------------|----------------|----------|
//! | Phase profile | Fig. 2 | [`experiments::fig2_profile`] |
//! | Engine complexity | Table I | [`experiments::table1_resources`] |
//! | Forward DT-CWT time | Fig. 9a | [`experiments::collect_matrix`] + [`experiments::fig9_series`] |
//! | Total time | Fig. 9b | same matrix |
//! | Inverse DT-CWT time | Fig. 9c | same matrix |
//! | Total energy | Fig. 10 | same matrix |
//! | Breaking points | §VII text | [`experiments::crossover_report`] |
//! | Adaptive selection | §VIII future work | [`experiments::adaptive_comparison`] |
//! | Transfer/buffering ablations | §V design choices | [`experiments::ablation_report`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod gate;
pub mod paper;
pub mod report;

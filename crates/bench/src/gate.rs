//! Bench regression gate: compares a freshly measured [`BenchReport`]
//! against a committed baseline `BENCH_pipeline.json` and flags
//! regressions beyond a tolerance.
//!
//! The gate is deliberately asymmetric per metric:
//!
//! * `frames_per_second` regresses when the *current* value drops below
//!   `baseline * (1 - tolerance)` — slower is bad, faster is fine.
//! * `energy_mj_per_frame` and `p99_ns_per_frame` regress when the
//!   current value climbs above `baseline * (1 + tolerance)` — more
//!   energy or a fatter tail is bad, less is fine.
//!
//! Rows are matched by the `(backend, threads, columnar, frame_size,
//! depth, rule)` six-tuple so a baseline captured with a different
//! thread count, geometry, fusion rule or kernel matrix degrades to
//! warnings, never false failures. Baseline rows predating the
//! `frame_size`/`depth`/`rule` columns are read as the historical
//! defaults (88x72, depth 1, `window-energy`). Missing rows or missing
//! metrics (e.g. a baseline predating the energy columns) are skipped
//! with a warning rather than treated as regressions, so the gate can be
//! adopted against historical baselines.

use crate::experiments::{BenchReport, BenchRow};
use wavefuse_trace::JsonValue;

/// One metric comparison between a current bench row and its baseline.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// Backend label of the row (paper naming, e.g. `FPGA`).
    pub backend: String,
    /// Worker threads of the row.
    pub threads: usize,
    /// Whether the columnar column passes were enabled for the row.
    pub columnar: bool,
    /// Frame geometry of the row.
    pub frame_size: (usize, usize),
    /// Pipelining depth of the row.
    pub depth: usize,
    /// Detail fusion rule label of the row.
    pub rule: String,
    /// Metric name (`frames_per_second`, `energy_mj_per_frame`,
    /// `p99_ns_per_frame`).
    pub metric: &'static str,
    /// Baseline value from the committed report.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Whether the current value violates the tolerance band.
    pub regressed: bool,
}

/// The full result of gating a report against a baseline.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Every metric comparison performed, in row order.
    pub checks: Vec<GateCheck>,
    /// Rows or metrics that could not be compared (skipped, not failed).
    pub warnings: Vec<String>,
    /// The relative tolerance used (e.g. `0.25` for ±25%).
    pub tolerance: f64,
}

impl GateOutcome {
    /// `true` when no compared metric regressed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| !c.regressed)
    }

    /// Number of regressed metric comparisons.
    pub fn regressions(&self) -> usize {
        self.checks.iter().filter(|c| c.regressed).count()
    }
}

/// Extracts a named `f64` metric from a baseline row object.
fn metric(row: &JsonValue, name: &str) -> Option<f64> {
    row.get(name).and_then(JsonValue::as_f64)
}

/// Frame geometry of a baseline row; rows predating the column read as
/// the historical default (88x72).
fn baseline_frame_size(row: &JsonValue) -> (usize, usize) {
    row.get("frame_size")
        .and_then(JsonValue::as_arr)
        .and_then(|a| match a {
            [w, h] => Some((w.as_f64()? as usize, h.as_f64()? as usize)),
            _ => None,
        })
        .unwrap_or((88, 72))
}

/// Pipelining depth of a baseline row; rows predating the column read as
/// the historical default (1, no software pipelining).
fn baseline_depth(row: &JsonValue) -> usize {
    row.get("depth")
        .and_then(JsonValue::as_f64)
        .map_or(1, |d| d as usize)
}

/// Detail fusion rule label of a baseline row; rows predating the column
/// read as the historical default rule (`window-energy`, radius 1).
fn baseline_rule(row: &JsonValue) -> &str {
    row.get("rule")
        .and_then(JsonValue::as_str)
        .unwrap_or("window-energy")
}

/// Finds the baseline row matching a current row's identity six-tuple.
fn find_baseline_row<'a>(rows: &'a [JsonValue], cur: &BenchRow) -> Option<&'a JsonValue> {
    rows.iter().find(|r| {
        r.get("backend").and_then(JsonValue::as_str) == Some(cur.backend.as_str())
            && r.get("threads").and_then(JsonValue::as_f64) == Some(cur.threads as f64)
            && r.get("columnar")
                .map(|v| matches!(v, JsonValue::Bool(b) if *b == cur.columnar))
                == Some(true)
            && baseline_frame_size(r) == cur.frame_size
            && baseline_depth(r) == cur.depth
            && baseline_rule(r) == cur.rule
    })
}

/// Reads and parses a baseline report from disk, degrading every failure
/// mode — missing file, unreadable file, empty file, truncated or
/// otherwise corrupt JSON — to a warning instead of an error. In those
/// cases the returned document is [`JsonValue::Null`], which
/// [`check_against_baseline`] in turn degrades to per-row warnings, so a
/// bench run with `--check` never hard-fails just because the baseline
/// is absent or damaged (it still fails on genuine regressions).
pub fn load_baseline(path: &str) -> (JsonValue, Option<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            return (
                JsonValue::Null,
                Some(format!(
                    "baseline {path} unreadable ({e}); gate degrades to warnings"
                )),
            );
        }
    };
    if text.trim().is_empty() {
        return (
            JsonValue::Null,
            Some(format!(
                "baseline {path} is empty; gate degrades to warnings"
            )),
        );
    }
    match JsonValue::parse(&text) {
        Ok(v) => (v, None),
        Err(e) => (
            JsonValue::Null,
            Some(format!(
                "baseline {path} is not valid JSON ({e}); gate degrades to warnings"
            )),
        ),
    }
}

/// Compares `current` against a parsed baseline report, with a relative
/// `tolerance` (fraction, e.g. `0.25`).
///
/// The baseline is the JSON document produced by serializing a
/// [`BenchReport`] (the committed `BENCH_pipeline.json`); an arbitrary
/// document degrades to warnings for every row.
pub fn check_against_baseline(
    current: &BenchReport,
    baseline: &JsonValue,
    tolerance: f64,
) -> GateOutcome {
    let tolerance = tolerance.max(0.0);
    let mut outcome = GateOutcome {
        checks: Vec::new(),
        warnings: Vec::new(),
        tolerance,
    };
    let empty: [JsonValue; 0] = [];
    let base_rows: &[JsonValue] = match baseline.get("rows").and_then(JsonValue::as_arr) {
        Some(rows) => rows,
        None => {
            outcome
                .warnings
                .push("baseline has no `rows` array; nothing compared".into());
            &empty
        }
    };
    for cur in &current.rows {
        let ident = format!(
            "{} threads={} columnar={} size={}x{} depth={} rule={}",
            cur.backend,
            cur.threads,
            cur.columnar,
            cur.frame_size.0,
            cur.frame_size.1,
            cur.depth,
            cur.rule
        );
        let Some(base) = find_baseline_row(base_rows, cur) else {
            if !base_rows.is_empty() {
                outcome
                    .warnings
                    .push(format!("no baseline row for {ident}; skipped"));
            }
            continue;
        };
        // (metric name, baseline, current, higher-is-better)
        let comparisons: [(&'static str, Option<f64>, f64, bool); 3] = [
            (
                "frames_per_second",
                metric(base, "frames_per_second"),
                cur.frames_per_second,
                true,
            ),
            (
                "energy_mj_per_frame",
                metric(base, "energy_mj_per_frame"),
                cur.energy_mj_per_frame,
                false,
            ),
            (
                "p99_ns_per_frame",
                metric(base, "p99_ns_per_frame"),
                cur.p99_ns_per_frame,
                false,
            ),
        ];
        for (name, base_value, cur_value, higher_is_better) in comparisons {
            let Some(base_value) = base_value else {
                outcome
                    .warnings
                    .push(format!("baseline row {ident} lacks `{name}`; skipped"));
                continue;
            };
            let regressed = if higher_is_better {
                cur_value < base_value * (1.0 - tolerance)
            } else {
                cur_value > base_value * (1.0 + tolerance)
            };
            outcome.checks.push(GateCheck {
                backend: cur.backend.clone(),
                threads: cur.threads,
                columnar: cur.columnar,
                frame_size: cur.frame_size,
                depth: cur.depth,
                rule: cur.rule.clone(),
                metric: name,
                baseline: base_value,
                current: cur_value,
                regressed,
            });
        }
    }
    if outcome.checks.is_empty() && outcome.warnings.is_empty() {
        outcome
            .warnings
            .push("no rows compared against the baseline".into());
    }
    outcome
}

/// Renders the gate outcome as a human-readable report.
pub fn render_gate(outcome: &GateOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## Bench regression gate (tolerance ±{:.0}%)\n",
        outcome.tolerance * 100.0
    ));
    out.push_str(&format!(
        "{:>8} {:>7} {:>8} {:>10} {:>5} {:>15} | {:>20} | {:>12} {:>12} | {}\n",
        "backend",
        "threads",
        "columnar",
        "size",
        "depth",
        "rule",
        "metric",
        "baseline",
        "current",
        "verdict"
    ));
    out.push_str(&"-".repeat(124));
    out.push('\n');
    for c in &outcome.checks {
        out.push_str(&format!(
            "{:>8} {:>7} {:>8} {:>10} {:>5} {:>15} | {:>20} | {:>12.3} {:>12.3} | {}\n",
            c.backend,
            c.threads,
            c.columnar,
            format!("{}x{}", c.frame_size.0, c.frame_size.1),
            c.depth,
            c.rule,
            c.metric,
            c.baseline,
            c.current,
            if c.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    for w in &outcome.warnings {
        out.push_str(&format!("warning: {w}\n"));
    }
    out.push_str(&format!(
        "gate: {} ({} checks, {} regressions, {} warnings)\n",
        if outcome.passed() { "PASS" } else { "FAIL" },
        outcome.checks.len(),
        outcome.regressions(),
        outcome.warnings.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_trace::ToJson;

    fn report() -> BenchReport {
        BenchReport {
            frame_size: (88, 72),
            levels: 3,
            scene_seed: 2016,
            warmup_frames: 4,
            frames: 8,
            reps: 3,
            rows: vec![BenchRow {
                backend: "FPGA".into(),
                threads: 2,
                frame_size: (88, 72),
                depth: 1,
                frames: 8,
                kernel: "zynq-sim".into(),
                rule: "window-energy".into(),
                columnar: true,
                wall_s: 0.1,
                frames_per_second: 80.0,
                ns_per_frame: 1.25e7,
                mean_frames_per_second: 78.0,
                energy_mj_per_frame: 12.0,
                fps_per_watt: 144.9,
                p50_ns_per_frame: 1.2e7,
                p99_ns_per_frame: 1.4e7,
                phase_s: vec![("forward".into(), 0.05)],
                pool_hits: 10,
                pool_misses: 2,
                pool_bytes: 4096,
            }],
        }
    }

    #[test]
    fn identical_baseline_passes() {
        let cur = report();
        let base = cur.to_json();
        let out = check_against_baseline(&cur, &base, 0.25);
        assert!(out.passed(), "{}", render_gate(&out));
        assert_eq!(out.checks.len(), 3);
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn inflated_fps_baseline_fails_only_fps() {
        let cur = report();
        let mut base = cur.to_json();
        // Inflate the baseline fps 100x: the current run now looks slow.
        if let JsonValue::Obj(pairs) = &mut base {
            let rows = pairs.iter_mut().find(|(k, _)| k == "rows").unwrap();
            if let JsonValue::Arr(rows) = &mut rows.1 {
                if let JsonValue::Obj(row) = &mut rows[0] {
                    let fps = row
                        .iter_mut()
                        .find(|(k, _)| k == "frames_per_second")
                        .unwrap();
                    fps.1 = JsonValue::Num(8000.0);
                }
            }
        }
        let out = check_against_baseline(&cur, &base, 0.25);
        assert!(!out.passed());
        assert_eq!(out.regressions(), 1);
        let bad = out.checks.iter().find(|c| c.regressed).unwrap();
        assert_eq!(bad.metric, "frames_per_second");
    }

    #[test]
    fn higher_energy_and_p99_regress_lower_do_not() {
        let mut cur = report();
        let base = cur.to_json();
        cur.rows[0].energy_mj_per_frame = 20.0; // +67% > 25%
        cur.rows[0].p99_ns_per_frame = 1.0e7; // improvement
        let out = check_against_baseline(&cur, &base, 0.25);
        assert_eq!(out.regressions(), 1);
        assert_eq!(
            out.checks.iter().find(|c| c.regressed).unwrap().metric,
            "energy_mj_per_frame"
        );
    }

    #[test]
    fn missing_rows_and_metrics_warn_instead_of_failing() {
        let cur = report();
        // Baseline with a different identity triple: no row matches.
        let mut other = report();
        other.rows[0].threads = 4;
        let out = check_against_baseline(&cur, &other.to_json(), 0.25);
        assert!(out.passed());
        assert!(out.checks.is_empty());
        assert!(!out.warnings.is_empty());
        // Baseline missing the new metric columns entirely.
        let mut stripped = cur.to_json();
        if let JsonValue::Obj(pairs) = &mut stripped {
            let rows = pairs.iter_mut().find(|(k, _)| k == "rows").unwrap();
            if let JsonValue::Arr(rows) = &mut rows.1 {
                if let JsonValue::Obj(row) = &mut rows[0] {
                    row.retain(|(k, _)| k != "energy_mj_per_frame" && k != "p99_ns_per_frame");
                }
            }
        }
        let out = check_against_baseline(&cur, &stripped, 0.25);
        assert!(out.passed());
        assert_eq!(out.checks.len(), 1); // fps still compared
        assert_eq!(out.warnings.len(), 2);
    }

    #[test]
    fn legacy_baseline_rows_read_as_default_size_and_depth() {
        // A baseline written before the frame_size/depth/rule columns
        // existed must still match a current (88x72, depth 1,
        // window-energy) row exactly...
        let cur = report();
        let mut legacy = cur.to_json();
        if let JsonValue::Obj(pairs) = &mut legacy {
            let rows = pairs.iter_mut().find(|(k, _)| k == "rows").unwrap();
            if let JsonValue::Arr(rows) = &mut rows.1 {
                if let JsonValue::Obj(row) = &mut rows[0] {
                    row.retain(|(k, _)| {
                        k != "frame_size" && k != "depth" && k != "frames" && k != "rule"
                    });
                }
            }
        }
        let out = check_against_baseline(&cur, &legacy, 0.25);
        assert!(out.passed(), "{}", render_gate(&out));
        assert_eq!(out.checks.len(), 3);
        assert!(out.warnings.is_empty());

        // ...and degrade a larger-frame or deeper row to a warning, not a
        // false comparison against the 88x72 figures.
        let mut vga = report();
        vga.rows[0].frame_size = (640, 480);
        let out = check_against_baseline(&vga, &legacy, 0.25);
        assert!(out.checks.is_empty());
        assert_eq!(out.warnings.len(), 1);

        let mut deep = report();
        deep.rows[0].depth = 2;
        let out = check_against_baseline(&deep, &legacy, 0.25);
        assert!(out.checks.is_empty());
        assert_eq!(out.warnings.len(), 1);

        // ...and a row measured under a different fusion rule must not be
        // compared against the legacy (implicitly window-energy) figures.
        let mut ruled = report();
        ruled.rows[0].rule = "choose-max".into();
        let out = check_against_baseline(&ruled, &legacy, 0.25);
        assert!(out.checks.is_empty());
        assert_eq!(out.warnings.len(), 1);
    }

    #[test]
    fn rows_for_different_rules_gate_independently() {
        let mut cur = report();
        cur.rows[0].rule = "choose-max".into();
        // Same-rule baseline: full comparison.
        let base = cur.to_json();
        let out = check_against_baseline(&cur, &base, 0.25);
        assert!(out.passed(), "{}", render_gate(&out));
        assert_eq!(out.checks.len(), 3);
        // A window-energy baseline never gates a choose-max row.
        let out = check_against_baseline(&cur, &report().to_json(), 0.25);
        assert!(out.checks.is_empty());
        assert_eq!(out.warnings.len(), 1);
    }

    #[test]
    fn garbage_baseline_degrades_to_warning() {
        let cur = report();
        let out = check_against_baseline(&cur, &JsonValue::Null, 0.25);
        assert!(out.passed());
        assert!(!out.warnings.is_empty());
    }

    #[test]
    fn missing_empty_and_truncated_baseline_files_degrade_to_warnings() {
        let (doc, warning) = load_baseline("/nonexistent/BENCH_pipeline.json");
        assert!(matches!(doc, JsonValue::Null));
        assert!(warning.unwrap().contains("unreadable"));

        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/gate-test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text, needle) in [
            ("empty.json", "", "empty"),
            (
                "truncated.json",
                "{\"rows\": [{\"backend\": \"FP",
                "not valid JSON",
            ),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            let (doc, warning) = load_baseline(path.to_str().unwrap());
            assert!(
                matches!(doc, JsonValue::Null),
                "{name} should parse to Null"
            );
            assert!(warning.unwrap().contains(needle), "{name} warning text");
            // A Null baseline must gate to warnings, never a failure.
            let out = check_against_baseline(&report(), &doc, 0.25);
            assert!(out.passed());
            assert!(!out.warnings.is_empty());
        }

        let good = dir.join("good.json");
        std::fs::write(&good, report().to_json().render()).unwrap();
        let (doc, warning) = load_baseline(good.to_str().unwrap());
        assert!(warning.is_none());
        assert!(check_against_baseline(&report(), &doc, 0.25).passed());
    }

    #[test]
    fn serve_rows_are_gated_by_the_same_six_tuple() {
        let mut cur = report();
        cur.rows[0].backend = "SERVE-64".into();
        cur.rows[0].kernel = "fleet-shared-pool".into();
        let base = cur.to_json();
        let out = check_against_baseline(&cur, &base, 0.25);
        assert!(out.passed(), "{}", render_gate(&out));
        assert_eq!(out.checks.len(), 3);

        // A serve throughput collapse is a regression, not a warning.
        cur.rows[0].frames_per_second = 1.0;
        let out = check_against_baseline(&cur, &base, 0.25);
        assert_eq!(out.regressions(), 1);

        // A serve row never matches a single-stream row of the same
        // threads/size/depth: the backend label disambiguates.
        let single = report();
        let out = check_against_baseline(&cur, &single.to_json(), 0.25);
        assert!(out.checks.is_empty());
    }
}

//! Experiment runners.
//!
//! Every function actually *executes* the system — frames are rendered by
//! the synthetic scene, captured through the camera models, transformed by
//! the real kernels (the FPGA times come from the cycle-level simulator's
//! ledger) — and returns the series the corresponding paper artifact plots.

use wavefuse_trace::{JsonValue, ToJson};

use wavefuse_core::adaptive::{AdaptiveScheduler, Objective, Policy};
use wavefuse_core::baseline::{average_fusion, dwt_fusion, laplacian_fusion, swt_fusion};
use wavefuse_core::cost::{CostModel, Direction, TransformPlan};
use wavefuse_core::engine::PhaseTiming;
use wavefuse_core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse_core::profile::profile_fusion;
use wavefuse_core::rules::{FusionRule, LowpassRule};
use wavefuse_core::serve::{FleetConfig, ServeReport, StreamConfig, StreamManager};
use wavefuse_core::{Backend, BackendCounts, FusionEngine, FusionError};
use wavefuse_dtcwt::{FilterBank, Image};
use wavefuse_video::camera::{ThermalCamera, WebCamera};
use wavefuse_video::scene::ScenePair;
use wavefuse_video::Frame;
use wavefuse_zynq::bus::gp_port_ps_cycles;
use wavefuse_zynq::resources::{estimate, XC7Z020};

use crate::paper::{FRAMES_PER_RUN, LEVELS, PAPER_SIZES};

/// Scene seed used by every experiment (reproducibility).
pub const SCENE_SEED: u64 = 2016;

/// One run of the evaluation matrix: a frame size crossed with a backend.
#[derive(Debug, Clone)]
pub struct MatrixEntry {
    /// Frame geometry.
    pub size: (usize, usize),
    /// Backend label (paper naming).
    pub backend: String,
    /// Ten-frame forward-phase seconds.
    pub forward_s: f64,
    /// Ten-frame fusion-phase seconds.
    pub fusion_s: f64,
    /// Ten-frame inverse-phase seconds.
    pub inverse_s: f64,
    /// Ten-frame total seconds.
    pub total_s: f64,
    /// Ten-frame energy, millijoules.
    pub energy_mj: f64,
}

/// Runs the full 5-sizes x 3-backends matrix of the paper's §VII: ten
/// frames captured, decomposed, fused and reconstructed per cell.
///
/// # Errors
///
/// Propagates pipeline errors (none occur for the paper's geometries).
pub fn collect_matrix() -> Result<Vec<MatrixEntry>, FusionError> {
    let mut rows = Vec::new();
    for &(w, h) in &PAPER_SIZES {
        for backend in Backend::ALL {
            let mut pipe = VideoFusionPipeline::new(PipelineConfig {
                frame_size: (w, h),
                levels: LEVELS,
                backend: BackendChoice::Fixed(backend),
                scene_seed: SCENE_SEED,
                threads: 1,
                depth: 1,
            })?;
            let stats = pipe.run(FRAMES_PER_RUN)?;
            rows.push(MatrixEntry {
                size: (w, h),
                backend: backend.label().to_string(),
                forward_s: stats.timing.forward_s,
                fusion_s: stats.timing.fusion_s,
                inverse_s: stats.timing.inverse_s,
                total_s: stats.timing.total_seconds(),
                energy_mj: stats.energy_mj,
            });
        }
    }
    Ok(rows)
}

/// Which quantity of the matrix a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantity {
    /// Fig. 9a: forward-phase seconds.
    Forward,
    /// Fig. 9c: inverse-phase seconds.
    Inverse,
    /// Fig. 9b: total seconds.
    Total,
    /// Fig. 10: energy in millijoules.
    Energy,
}

/// One per-size row of a Fig. 9/10 series: the three modes' values.
#[derive(Debug, Clone)]
pub struct SeriesRow {
    /// Frame geometry.
    pub size: (usize, usize),
    /// ARM-only value.
    pub arm: f64,
    /// ARM+NEON value.
    pub neon: f64,
    /// ARM+FPGA value.
    pub fpga: f64,
}

/// Extracts a figure's series from the collected matrix.
pub fn fig9_series(matrix: &[MatrixEntry], quantity: Quantity) -> Vec<SeriesRow> {
    let value = |e: &MatrixEntry| match quantity {
        Quantity::Forward => e.forward_s,
        Quantity::Inverse => e.inverse_s,
        Quantity::Total => e.total_s,
        Quantity::Energy => e.energy_mj,
    };
    PAPER_SIZES
        .iter()
        .map(|&size| {
            let get = |label: &str| {
                matrix
                    .iter()
                    .find(|e| e.size == size && e.backend == label)
                    .map(value)
                    .expect("matrix covers all cells")
            };
            SeriesRow {
                size,
                arm: get("ARM Only"),
                neon: get("ARM+NEON"),
                fpga: get("ARM+FPGA"),
            }
        })
        .collect()
}

/// Fig. 2: phase-level profile of fusing two captured 88x72 frames on the
/// ARM, as percentages.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig2_profile() -> Result<Vec<(String, f64)>, FusionError> {
    let scene = ScenePair::new(SCENE_SEED);
    let a = scene.render_visible(88, 72, 0.0);
    let b = scene.render_thermal(88, 72, 0.0);
    let mut engine = FusionEngine::new(LEVELS)?;
    let report = profile_fusion(&mut engine, &a, &b, Backend::Arm)?;
    Ok(report
        .percentages()
        .into_iter()
        .map(|(n, p)| (n.to_string(), p))
        .collect())
}

/// One Table I row: resource, used, available, percent.
#[derive(Debug, Clone)]
pub struct ResourceRow {
    /// Resource name.
    pub resource: String,
    /// Units used.
    pub used: u64,
    /// Units available on the xc7z020.
    pub available: u64,
    /// Rounded percentage.
    pub percent: u64,
}

/// Table I: estimated utilization of the wavelet engine, for the paper's
/// 12-tap geometry and for this reproduction's deployed 20-tap engine.
pub fn table1_resources(taps: usize) -> Vec<ResourceRow> {
    let u = estimate(taps);
    let p = u.percentages(&XC7Z020);
    [
        ("Registers", u.registers, XC7Z020.registers, p[0]),
        ("LUTs", u.luts, XC7Z020.luts, p[1]),
        ("Slices", u.slices, XC7Z020.slices, p[2]),
        ("BUFG", u.bufg, XC7Z020.bufg, p[3]),
    ]
    .into_iter()
    .map(|(r, used, avail, pct)| ResourceRow {
        resource: r.to_string(),
        used,
        available: avail,
        percent: pct,
    })
    .collect()
}

/// Crossover ("breaking point") analysis.
#[derive(Debug, Clone)]
pub struct CrossoverReport {
    /// Smallest square edge where the FPGA's forward phase beats NEON's.
    pub forward_edge: Option<usize>,
    /// Smallest square edge where the FPGA's inverse phase beats NEON's.
    pub inverse_edge: Option<usize>,
    /// Smallest square edge where the FPGA wins on total frame time.
    pub total_edge: Option<usize>,
    /// Smallest square edge where the FPGA wins on energy.
    pub energy_edge: Option<usize>,
}

/// Sweeps square frame sizes to locate all four breaking points.
///
/// # Errors
///
/// Propagates model errors for unsupported geometries.
pub fn crossover_report() -> Result<CrossoverReport, FusionError> {
    let model = CostModel::calibrated();
    let sched = AdaptiveScheduler::new(Policy::Model(Objective::Time), LEVELS);
    let phase_edge = |dir: Direction| -> Option<usize> {
        (24..=96).find(|&e| {
            let plan = TransformPlan::dtcwt(e, e, LEVELS).expect("supported");
            model.fpga_seconds(&plan, dir) < model.neon_seconds(&plan, dir)
        })
    };
    Ok(CrossoverReport {
        forward_edge: phase_edge(Direction::Forward),
        inverse_edge: phase_edge(Direction::Inverse),
        total_edge: sched.crossover_edge(Objective::Time, 24, 96)?,
        energy_edge: sched.crossover_edge(Objective::Energy, 24, 96)?,
    })
}

/// Result of running one backend policy over the mixed-size workload.
#[derive(Debug, Clone)]
pub struct PolicyOutcome {
    /// Policy label.
    pub policy: String,
    /// Total modeled seconds over the workload.
    pub total_s: f64,
    /// Total modeled energy, millijoules.
    pub energy_mj: f64,
    /// Frames per backend, indexable by [`Backend`].
    pub backend_usage: BackendCounts,
}

/// The adaptive-execution experiment (the paper's §VIII future work): a
/// workload whose frame size varies (as decomposition level and sensor
/// windowing do in practice), run under fixed-NEON, fixed-FPGA, and the
/// model-driven and online adaptive policies.
///
/// # Errors
///
/// Propagates engine errors.
pub fn adaptive_comparison() -> Result<Vec<PolicyOutcome>, FusionError> {
    let sizes: Vec<(usize, usize)> = PAPER_SIZES
        .iter()
        .cycle()
        .take(PAPER_SIZES.len() * 4)
        .copied()
        .collect();
    let scene = ScenePair::new(SCENE_SEED);

    let mut outcomes = Vec::new();
    let policies: Vec<(String, Option<Policy>, Option<Backend>)> = vec![
        ("fixed ARM".into(), None, Some(Backend::Arm)),
        ("fixed NEON".into(), None, Some(Backend::Neon)),
        ("fixed FPGA".into(), None, Some(Backend::Fpga)),
        (
            "adaptive (model, time)".into(),
            Some(Policy::Model(Objective::Time)),
            None,
        ),
        (
            "adaptive (model, energy)".into(),
            Some(Policy::Model(Objective::Energy)),
            None,
        ),
        (
            "adaptive (online, time)".into(),
            Some(Policy::Online(Objective::Time)),
            None,
        ),
    ];

    for (label, policy, fixed) in policies {
        let mut engine = FusionEngine::new(LEVELS)?;
        let mut sched = policy.map(|p| AdaptiveScheduler::new(p, LEVELS));
        let mut total_s = 0.0;
        let mut energy = 0.0;
        let mut usage = BackendCounts::new();
        for (i, &(w, h)) in sizes.iter().enumerate() {
            let t = i as f64 / 30.0;
            let a = scene.render_visible(w, h, t);
            let b = scene.render_thermal(w, h, t);
            let backend = match (&mut sched, fixed) {
                (Some(s), _) => s.choose(w, h)?,
                (None, Some(b)) => b,
                _ => unreachable!("policy xor fixed"),
            };
            let out = engine.fuse(&a, &b, backend)?;
            if let Some(s) = &mut sched {
                s.observe(w, h, backend, out.timing.total_seconds(), out.energy_mj);
            }
            total_s += out.timing.total_seconds();
            energy += out.energy_mj;
            usage[backend] += 1;
        }
        outcomes.push(PolicyOutcome {
            policy: label,
            total_s,
            energy_mj: energy,
            backend_usage: usage,
        });
    }
    Ok(outcomes)
}

/// One ablation row: a design choice toggled, with resulting ten-frame
/// 88x72 forward-phase time.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub configuration: String,
    /// Ten-frame forward-phase seconds at 88x72.
    pub forward_s: f64,
    /// Slowdown versus the full design.
    pub slowdown: f64,
}

/// Ablates the paper's §V design choices on the FPGA path: the ACP
/// hardware `memcpy` (vs. CPU-driven general-purpose port transfers) and
/// the Fig. 5 double buffering (vs. serial copy-then-process).
///
/// # Errors
///
/// Propagates model errors.
pub fn ablation_report() -> Result<Vec<AblationRow>, FusionError> {
    let model = CostModel::calibrated();
    let plan = TransformPlan::dtcwt(88, 72, LEVELS)?;
    let frames = FRAMES_PER_RUN as f64;
    let full = 2.0 * frames * model.fpga_seconds(&plan, Direction::Forward);

    // (a) No double buffering: copy and engine run serialize.
    let ps_t = 1.0 / model.zynq.ps_clk_hz;
    let pl_t = 1.0 / model.zynq.pl_clk_hz;
    let mut no_overlap = 0.0;
    let mut gp_port = 0.0;
    for op in plan.forward_ops() {
        let copy_words = op.words_in + op.words_out;
        let copy_s = copy_words as f64 * model.zynq.user_memcpy_ps_cycles_per_word * ps_t;
        let pl = wavefuse_zynq::bus::acp_burst_pl_cycles(op.words_in, &model.zynq)
            + model.zynq.pipeline_flush_pl_cycles
            + op.iterations as u64
            + wavefuse_zynq::bus::acp_burst_pl_cycles(op.words_out, &model.zynq);
        let fixed = (model.zynq.call_overhead_ps_cycles_forward
            + 6 * model.zynq.axil_write_ps_cycles) as f64
            * ps_t;
        no_overlap += op.count as f64 * (fixed + copy_s + pl as f64 * pl_t);
        // (b) GP port: the CPU moves every word itself at ~25 cycles/word,
        // and the pipeline still runs, serially.
        let gp_s = gp_port_ps_cycles(copy_words) as f64 * ps_t;
        let pipe_only = (model.zynq.pipeline_flush_pl_cycles + op.iterations as u64) as f64 * pl_t;
        gp_port += op.count as f64 * (fixed + gp_s + pipe_only);
    }
    no_overlap *= 2.0 * frames;
    gp_port *= 2.0 * frames;

    Ok(vec![
        AblationRow {
            configuration: "full design (ACP DMA + double buffering)".into(),
            forward_s: full,
            slowdown: 1.0,
        },
        AblationRow {
            configuration: "no double buffering (serial copy/process)".into(),
            forward_s: no_overlap,
            slowdown: no_overlap / full,
        },
        AblationRow {
            configuration: "GP-port transfers (CPU moves the data)".into(),
            forward_s: gp_port,
            slowdown: gp_port / full,
        },
    ])
}

/// One row of the decomposition-level sweep.
#[derive(Debug, Clone)]
pub struct LevelsRow {
    /// Decomposition depth.
    pub levels: usize,
    /// ARM per-frame seconds.
    pub arm_s: f64,
    /// NEON per-frame seconds.
    pub neon_s: f64,
    /// FPGA per-frame seconds.
    pub fpga_s: f64,
    /// Hybrid per-frame seconds.
    pub hybrid_s: f64,
    /// Coarsest-level LL dimensions.
    pub ll_dims: (usize, usize),
}

/// Varies the decomposition depth at the paper's full 88x72 frame size
/// ("the decomposition level of the DT-CWT was varied", §VII). Deeper
/// levels add geometrically less work, but their rows shrink below the
/// FPGA's profitability threshold — which is why the hybrid backend's
/// advantage grows with depth.
///
/// # Errors
///
/// Propagates engine errors.
pub fn levels_sweep() -> Result<Vec<LevelsRow>, FusionError> {
    let scene = ScenePair::new(SCENE_SEED);
    let a = scene.render_visible(88, 72, 0.0);
    let b = scene.render_thermal(88, 72, 0.0);
    let mut rows = Vec::new();
    for levels in 1..=5 {
        let mut engine = FusionEngine::new(levels)?;
        let time = |engine: &mut FusionEngine, backend: Backend| -> Result<f64, FusionError> {
            Ok(engine.fuse(&a, &b, backend)?.timing.total_seconds())
        };
        let arm_s = time(&mut engine, Backend::Arm)?;
        let neon_s = time(&mut engine, Backend::Neon)?;
        let fpga_s = time(&mut engine, Backend::Fpga)?;
        let hybrid_s = time(&mut engine, Backend::Hybrid)?;
        let pyr = wavefuse_dtcwt::Dtcwt::new(levels)?.forward(&a)?;
        let ll_dims = pyr.lowpass()[0].dims();
        rows.push(LevelsRow {
            levels,
            arm_s,
            neon_s,
            fpga_s,
            hybrid_s,
            ll_dims,
        });
    }
    Ok(rows)
}

/// One row of the hybrid-backend study: per-frame time at a size, for the
/// two pure accelerators and the per-row-routed hybrid.
#[derive(Debug, Clone)]
pub struct HybridRow {
    /// Frame geometry.
    pub size: (usize, usize),
    /// NEON per-frame seconds.
    pub neon_s: f64,
    /// FPGA per-frame seconds.
    pub fpga_s: f64,
    /// Hybrid per-frame seconds.
    pub hybrid_s: f64,
    /// Rows routed to SIMD inside one hybrid forward transform.
    pub rows_simd: u64,
    /// Rows routed to the FPGA.
    pub rows_fpga: u64,
}

/// The hybrid per-row routing study (extension of the paper's §VIII): at
/// every size, fuse one captured frame pair on pure NEON, pure FPGA and
/// the hybrid backend.
///
/// # Errors
///
/// Propagates engine errors.
pub fn hybrid_comparison() -> Result<Vec<HybridRow>, FusionError> {
    let scene = ScenePair::new(SCENE_SEED);
    let mut engine = FusionEngine::new(LEVELS)?;
    let mut rows = Vec::new();
    for &(w, h) in &PAPER_SIZES {
        let a = scene.render_visible(w, h, 0.0);
        let b = scene.render_thermal(w, h, 0.0);
        let neon_s = engine.fuse(&a, &b, Backend::Neon)?.timing.total_seconds();
        let fpga_s = engine.fuse(&a, &b, Backend::Fpga)?.timing.total_seconds();
        let hybrid_s = engine.fuse(&a, &b, Backend::Hybrid)?.timing.total_seconds();
        // Row-routing census via a fresh kernel on one forward transform.
        let mut k = wavefuse_core::hybrid::HybridKernel::new();
        let t = wavefuse_dtcwt::Dtcwt::new(LEVELS)?;
        let _ = t.forward_with(&mut k, &a)?;
        rows.push(HybridRow {
            size: (w, h),
            neon_s,
            fpga_s,
            hybrid_s,
            rows_simd: k.rows_on_simd(),
            rows_fpga: k.rows_on_fpga(),
        });
    }
    Ok(rows)
}

/// One row of the throughput report.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Frame geometry.
    pub size: (usize, usize),
    /// Achieved frames/second per backend `[ARM, NEON, FPGA, Hybrid]`
    /// under the modeled platform.
    pub fps: [f64; 4],
}

/// Modeled fusion throughput (frames per second) per backend and size —
/// the figure of merit the related work (paper §II: 25-30 fps at VGA)
/// reports.
///
/// # Errors
///
/// Propagates engine errors.
pub fn throughput_report() -> Result<Vec<ThroughputRow>, FusionError> {
    let scene = ScenePair::new(SCENE_SEED);
    let mut engine = FusionEngine::new(LEVELS)?;
    let mut rows = Vec::new();
    for &(w, h) in &PAPER_SIZES {
        let a = scene.render_visible(w, h, 0.0);
        let b = scene.render_thermal(w, h, 0.0);
        let mut fps = [0.0f64; 4];
        for backend in Backend::ALL_EXTENDED {
            let t = engine.fuse(&a, &b, backend)?.timing.total_seconds();
            fps[backend.index()] = 1.0 / t;
        }
        rows.push(ThroughputRow { size: (w, h), fps });
    }
    Ok(rows)
}

/// Fusion-quality comparison row.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// Method label.
    pub method: String,
    /// Shannon entropy of the fused frame, bits.
    pub entropy: f64,
    /// Spatial frequency.
    pub spatial_frequency: f64,
    /// Petrović `Q^{AB/F}` edge preservation.
    pub qabf: f64,
    /// Fusion mutual information `I(A;F) + I(B;F)`, bits.
    pub mutual_information: f64,
}

/// Compares DT-CWT fusion against the baselines on a captured scene pair
/// (the paper's §I claim that DT-CWT fusion quality motivates the system).
///
/// # Errors
///
/// Propagates engine errors.
pub fn quality_comparison(w: usize, h: usize) -> Result<Vec<QualityRow>, FusionError> {
    let scene = ScenePair::new(SCENE_SEED);
    let a = scene.render_visible(w, h, 0.0);
    let b = scene.render_thermal(w, h, 0.0);

    let mut engine = FusionEngine::with_rules(
        LEVELS,
        FusionRule::WindowEnergy { radius: 1 },
        LowpassRule::Average,
    )?;
    let dtcwt_img = engine.fuse(&a, &b, Backend::Neon)?.image;
    let mut engine_max =
        FusionEngine::with_rules(LEVELS, FusionRule::MaxMagnitude, LowpassRule::Average)?;
    let dtcwt_max_img = engine_max.fuse(&a, &b, Backend::Neon)?.image;
    let mut engine_act = FusionEngine::with_rules(
        LEVELS,
        FusionRule::ActivityGuided {
            radius: 1,
            match_threshold: 0.75,
        },
        LowpassRule::Average,
    )?;
    let dtcwt_act_img = engine_act.fuse(&a, &b, Backend::Neon)?.image;
    let avg = average_fusion(&a, &b);
    let dwt = dwt_fusion(&a, &b, FilterBank::cdf_9_7()?, LEVELS)?;
    let swt = swt_fusion(&a, &b, FilterBank::cdf_9_7()?, LEVELS)?;
    let lap = laplacian_fusion(&a, &b, LEVELS)?;

    let row = |method: &str, img: &Image| QualityRow {
        method: method.to_string(),
        entropy: wavefuse_metrics::entropy(img),
        spatial_frequency: wavefuse_metrics::spatial_frequency(img),
        qabf: wavefuse_metrics::petrovic_qabf(&a, &b, img),
        mutual_information: wavefuse_metrics::fusion_mutual_information(&a, &b, img),
    };
    Ok(vec![
        row("averaging", &avg),
        row("laplacian pyramid", &lap),
        row("dwt (cdf 9/7), max-abs", &dwt),
        row("swt (cdf 9/7, undecimated)", &swt),
        row("dt-cwt, max-magnitude", &dtcwt_max_img),
        row("dt-cwt, activity-guided", &dtcwt_act_img),
        row("dt-cwt, window-energy (ours)", &dtcwt_img),
    ])
}

/// Outcome of the instrumented evaluation run: the telemetry handle (for
/// exporting), the pipeline's own statistics, and the cross-check between
/// the two — summed per-phase span durations from the trace against the
/// engine's accumulated [`PhaseTiming`](wavefuse_core::engine::PhaseTiming).
#[derive(Debug)]
pub struct TelemetryEval {
    /// The telemetry attached to the run (trace + metrics, ready to export).
    pub telemetry: std::sync::Arc<wavefuse_trace::Telemetry>,
    /// Pipeline statistics accumulated by the run itself.
    pub stats: wavefuse_core::pipeline::PipelineStats,
    /// `(phase, trace seconds, stats seconds)` per phase, in timeline order.
    pub phase_check: Vec<(String, f64, f64)>,
    /// Largest relative disagreement between trace and stats over the phases.
    pub max_phase_error: f64,
    /// The pipeline's flight recorder (a clone of the ring after the run),
    /// for `--flight-record` export.
    pub flight: wavefuse_trace::FlightRecorder,
    /// Per-frame energy summed over the flight recorder, millijoules.
    pub flight_energy_mj: f64,
    /// Relative disagreement between the recorder's per-frame energy sum
    /// and `stats.energy_mj` (the 0.1 % reconciliation gate).
    pub energy_error: f64,
}

/// Runs an instrumented pipeline (online-adaptive at the paper's 88x72,
/// with a bursty thermal source so the frame gate drops fields) and
/// cross-checks the emitted trace against the pipeline's statistics.
///
/// # Errors
///
/// Propagates engine errors.
pub fn telemetry_eval(frames: usize) -> Result<TelemetryEval, FusionError> {
    let telemetry = wavefuse_trace::Telemetry::shared();
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: LEVELS,
        backend: BackendChoice::Adaptive(Box::new(AdaptiveScheduler::new(
            Policy::Online(Objective::Time),
            LEVELS,
        ))),
        scene_seed: SCENE_SEED,
        threads: 1,
        depth: 1,
    })?;
    pipe.set_telemetry(std::sync::Arc::clone(&telemetry));
    for i in 0..frames.max(1) {
        // Every fourth step the thermal camera races ahead by one field,
        // exercising the gate-drop path.
        pipe.step_with_burst(if i % 4 == 3 { 2 } else { 1 })?;
    }
    let stats = pipe.stats();

    // Energy reconciliation: the flight recorder copies each frame's
    // modeled energy verbatim, so its sum must reproduce the aggregate
    // stat (to rounding). The default run is far below the ring capacity,
    // so no frame has been overwritten.
    let flight = pipe.flight_recorder().clone();
    let flight_energy_mj: f64 = flight.iter().map(|r| r.energy_mj).sum();
    let energy_error = if flight.wrapped() {
        // The ring lost the oldest frames; the sum is no longer comparable.
        0.0
    } else {
        (flight_energy_mj - stats.energy_mj).abs() / stats.energy_mj.max(1e-12)
    };

    let events = telemetry.tracer().events();
    let mut phase_check = Vec::new();
    let mut max_phase_error: f64 = 0.0;
    for (phase, stat_s) in stats.timing.phases() {
        let trace_s: f64 = events
            .iter()
            .filter(|e| e.category == "phase" && e.name == phase)
            .map(|e| e.model_dur_s)
            .sum();
        let err = (trace_s - stat_s).abs() / stat_s.max(1e-12);
        max_phase_error = max_phase_error.max(err);
        phase_check.push((phase.to_string(), trace_s, stat_s));
    }
    Ok(TelemetryEval {
        telemetry,
        stats,
        phase_check,
        max_phase_error,
        flight,
        flight_energy_mj,
        energy_error,
    })
}

/// Untimed frames stepped before the throughput measurement starts, so
/// the buffer pool, scratch arenas and plan cache are warm and the timed
/// window sees the zero-allocation steady state.
pub const BENCH_WARMUP_FRAMES: usize = 4;

/// Timed windows per configuration; the report keeps the fastest (the
/// usual min-time discipline, robust against scheduler noise) alongside
/// the mean.
pub const BENCH_REPS: usize = 3;

/// One measured pipeline configuration: a backend at a thread count,
/// frame size and pipelining depth.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Backend label (paper naming).
    pub backend: String,
    /// Worker threads driving the engine (1 = serial, no pool).
    pub threads: usize,
    /// Frame geometry of this row (rows of one report may differ when
    /// the scaling matrix is included).
    pub frame_size: (usize, usize),
    /// Effective pipelining depth (frames in flight; 1 = no software
    /// pipelining beyond the single-frame capture overlap).
    pub depth: usize,
    /// Timed frames per window for this row (large frames measure fewer).
    pub frames: usize,
    /// Kernel implementation name behind this backend (e.g. `neon-simd`).
    pub kernel: String,
    /// Detail fusion rule label this row ran under (see [`rule_label`]);
    /// part of the row identity so rows for different rules gate
    /// independently.
    pub rule: String,
    /// Whether the transpose-free columnar column passes were enabled.
    pub columnar: bool,
    /// Wall-clock seconds of the fastest timed window.
    pub wall_s: f64,
    /// Throughput of the fastest window, fused frames per second.
    pub frames_per_second: f64,
    /// Nanoseconds per fused frame in the fastest window.
    pub ns_per_frame: f64,
    /// Mean throughput across all [`BENCH_REPS`] windows.
    pub mean_frames_per_second: f64,
    /// Modeled energy per fused frame, millijoules (deterministic: from
    /// the cost/power models over the timed frames).
    pub energy_mj_per_frame: f64,
    /// Measured throughput per modeled watt of this backend's execution
    /// mode — the paper's energy-efficiency figure of merit.
    pub fps_per_watt: f64,
    /// Median wall-clock nanoseconds per `step()` — exact sorted-sample
    /// quantile within a window, best (lowest) window kept.
    pub p50_ns_per_frame: f64,
    /// 99th-percentile wall-clock nanoseconds per `step()` (same
    /// discipline as the p50).
    pub p99_ns_per_frame: f64,
    /// Measured per-frame wall-clock phase split, `(phase, seconds)` in
    /// timeline order — from the engine's `Instant`-based accounting of
    /// this row's own run, so backend and thread count both show up.
    /// `overhead` is the wall remainder (capture, gating, telemetry).
    pub phase_s: Vec<(String, f64)>,
    /// Engine buffer-pool hits over the whole run (warm-up included).
    pub pool_hits: u64,
    /// Engine buffer-pool misses over the whole run.
    pub pool_misses: u64,
    /// Bytes the engine buffer pool allocated over the whole run.
    pub pool_bytes: u64,
}

/// The measured throughput benchmark: every backend serially, plus the
/// CPU backends on the persistent worker pool.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Frame geometry (the paper's camera default).
    pub frame_size: (usize, usize),
    /// Decomposition levels.
    pub levels: usize,
    /// Scene seed shared by every configuration.
    pub scene_seed: u64,
    /// Untimed warm-up frames per configuration.
    pub warmup_frames: usize,
    /// Timed frames per window.
    pub frames: usize,
    /// Timed windows per configuration (the row keeps the fastest).
    pub reps: usize,
    /// One row per `(backend, threads)` configuration.
    pub rows: Vec<BenchRow>,
}

/// One configuration of the wall-clock benchmark.
#[derive(Debug, Clone, Copy)]
struct BenchCase {
    backend: Backend,
    threads: usize,
    /// Requested pipelining depth (the pipeline's degrade rule applies).
    depth: usize,
    frame_size: (usize, usize),
    /// Timed frames per window.
    frames: usize,
    /// Untimed warm-up frames (covers the depth-k prologue).
    warmup: usize,
    /// Detail fusion rule the window runs under.
    rule: FusionRule,
}

/// The stable row-key label of a fusion rule (what `BenchRow::rule`
/// records and what `repro bench --rule` accepts). Parameters are folded
/// into the label only when they change the work shape (the window
/// radius); blend weights and thresholds don't.
pub fn rule_label(rule: FusionRule) -> String {
    match rule {
        FusionRule::MaxMagnitude => "choose-max".to_string(),
        FusionRule::WindowEnergy { radius: 1 } => "window-energy".to_string(),
        FusionRule::WindowEnergy { radius } => format!("window-energy-r{radius}"),
        FusionRule::Weighted { .. } => "weighted".to_string(),
        FusionRule::ActivityGuided { radius: 1, .. } => "activity-guided".to_string(),
        FusionRule::ActivityGuided { radius, .. } => format!("activity-guided-r{radius}"),
    }
}

/// Parses a `--rule` argument back into a [`FusionRule`]. Accepts the
/// labels [`rule_label`] produces for the parameterless presets.
pub fn parse_rule(name: &str) -> Option<FusionRule> {
    match name {
        "choose-max" => Some(FusionRule::MaxMagnitude),
        "window-energy" => Some(FusionRule::WindowEnergy { radius: 1 }),
        "weighted" => Some(FusionRule::Weighted { alpha: 0.5 }),
        "activity-guided" => Some(FusionRule::ActivityGuided {
            radius: 1,
            match_threshold: 0.75,
        }),
        _ => None,
    }
}

/// Measures one configuration: warm-up, [`BENCH_REPS`] timed windows,
/// per-step latency quantiles, measured phase split and pool counters.
fn bench_case(case: BenchCase, columnar: bool) -> Result<BenchRow, FusionError> {
    let frames = case.frames.max(1);
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: case.frame_size,
        levels: LEVELS,
        backend: BackendChoice::Fixed(case.backend),
        scene_seed: SCENE_SEED,
        threads: case.threads,
        depth: case.depth,
    })?;
    pipe.engine_mut().set_columnar(columnar);
    pipe.engine_mut().set_rule(case.rule);
    pipe.run(case.warmup)?;
    let warm_wall = pipe.engine().wall_phase_totals();
    let warm_capture = pipe.wall_capture_seconds();
    let warm_energy_mj = pipe.stats().energy_mj;
    let mut best_s = f64::INFINITY;
    let mut total_s = 0.0;
    let mut best_p50_ns = f64::INFINITY;
    let mut best_p99_ns = f64::INFINITY;
    // Per-step samples, reused across windows (sized once, no timed
    // allocation). Each step is timed individually so the row carries
    // real latency quantiles, not just window means. At depth > 1 a
    // "step" is retire-one-submit-one in the steady state, so the
    // quantiles remain per-delivered-frame figures.
    let mut samples_ns: Vec<u64> = Vec::with_capacity(frames);
    for _ in 0..BENCH_REPS {
        samples_ns.clear();
        let start = std::time::Instant::now();
        for _ in 0..frames {
            let t0 = std::time::Instant::now();
            let out = pipe.step()?;
            pipe.recycle(out);
            samples_ns.push(t0.elapsed().as_nanos() as u64);
        }
        let window_s = start.elapsed().as_secs_f64();
        best_s = best_s.min(window_s);
        total_s += window_s;
        samples_ns.sort_unstable();
        // Keep the best window's quantiles — the min-time discipline
        // applied per order statistic, robust against one noisy window.
        best_p50_ns = best_p50_ns.min(sorted_quantile_ns(&samples_ns, 0.50));
        best_p99_ns = best_p99_ns.min(sorted_quantile_ns(&samples_ns, 0.99));
    }
    let timed_frames = (BENCH_REPS * frames) as f64;
    let energy_mj_per_frame = (pipe.stats().energy_mj - warm_energy_mj) / timed_frames;
    let power_w = wavefuse_power::PowerModel::zc702().power_w(case.backend.execution_mode());
    let frames_per_second = frames as f64 / best_s.max(1e-12);
    // Measured (not modeled) phase split: the engine's wall-clock
    // accounting for this row's own timed windows, so every
    // backend x threads configuration reports its own numbers.
    let wall = pipe.engine().wall_phase_totals();
    let capture_s = (pipe.wall_capture_seconds() - warm_capture) / timed_frames;
    let forward_s = (wall.forward_s - warm_wall.forward_s) / timed_frames;
    let fusion_s = (wall.fusion_s - warm_wall.fusion_s) / timed_frames;
    let inverse_s = (wall.inverse_s - warm_wall.inverse_s) / timed_frames;
    let per_frame = PhaseTiming {
        capture_s,
        forward_s,
        fusion_s,
        inverse_s,
        // Everything outside the measured phases: gating, telemetry and
        // pipeline bookkeeping.
        overhead_s: (total_s / timed_frames - capture_s - forward_s - fusion_s - inverse_s)
            .max(0.0),
    };
    let pool = pipe.engine().buffer_pool().stats();
    Ok(BenchRow {
        backend: case.backend.label().to_string(),
        threads: case.threads,
        frame_size: case.frame_size,
        depth: pipe.depth(),
        frames,
        kernel: pipe.engine().kernel_name(case.backend).to_string(),
        rule: rule_label(case.rule),
        columnar: pipe.engine().columnar(),
        wall_s: best_s,
        frames_per_second,
        ns_per_frame: best_s * 1e9 / frames as f64,
        mean_frames_per_second: timed_frames / total_s.max(1e-12),
        energy_mj_per_frame,
        fps_per_watt: frames_per_second / power_w.max(1e-12),
        p50_ns_per_frame: best_p50_ns,
        p99_ns_per_frame: best_p99_ns,
        phase_s: per_frame
            .phases()
            .iter()
            .map(|&(name, s)| (name.to_string(), s))
            .collect(),
        pool_hits: pool.hits,
        pool_misses: pool.misses,
        pool_bytes: pool.bytes_allocated,
    })
}

/// Measures real wall-clock pipeline throughput (fixed seed) for
/// `frames` timed steps per configuration. Unlike [`throughput_report`],
/// which inverts the *modeled* per-frame time, this times actual
/// execution with `std::time::Instant`, after a
/// [`BENCH_WARMUP_FRAMES`]-frame warm-up so pools and plan caches are
/// hot. Each backend runs serially; ARM and NEON additionally run on
/// the persistent worker pool with `threads` workers (defaulting to the
/// host parallelism clamped to 2..=4), at the requested pipelining
/// `depth` (serial rows degrade to depth 1 per the pipeline rule).
///
/// # Errors
///
/// Propagates pipeline errors (none occur for supported geometries).
pub fn pipeline_bench(
    frames: usize,
    threads: Option<usize>,
    columnar: bool,
    frame_size: (usize, usize),
    depth: usize,
    rule: FusionRule,
) -> Result<BenchReport, FusionError> {
    let frames = frames.max(1);
    let depth = depth.max(1);
    let threaded = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map_or(2, usize::from)
            .clamp(2, 4)
    });
    let mut configs: Vec<(Backend, usize)> = Backend::ALL.iter().map(|&b| (b, 1)).collect();
    if threaded > 1 {
        configs.push((Backend::Arm, threaded));
        configs.push((Backend::Neon, threaded));
    }

    let mut rows = Vec::new();
    for (backend, threads) in configs {
        rows.push(bench_case(
            BenchCase {
                backend,
                threads,
                depth,
                frame_size,
                frames,
                warmup: BENCH_WARMUP_FRAMES.max(depth + 1),
                rule,
            },
            columnar,
        )?);
    }
    Ok(BenchReport {
        frame_size,
        levels: LEVELS,
        scene_seed: SCENE_SEED,
        warmup_frames: BENCH_WARMUP_FRAMES,
        frames,
        reps: BENCH_REPS,
        rows,
    })
}

/// The frame sizes of the recorded scaling curve: the paper's camera
/// default, VGA, and full HD.
pub const SCALING_SIZES: [(usize, usize); 3] = [(88, 72), (640, 480), (1920, 1080)];

/// Thread counts of the recorded scaling curve.
pub const SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Pipelining depths of the recorded scaling curve.
pub const SCALING_DEPTHS: [usize; 3] = [1, 2, 3];

/// Timed frames per window for a scaling-curve cell: large frames
/// measure fewer so the full matrix stays tractable.
fn scaling_frames(frames: usize, (w, h): (usize, usize)) -> usize {
    match w * h {
        0..=65_535 => frames,
        65_536..=1_000_000 => (frames / 8).max(4),
        _ => (frames / 16).max(3),
    }
}

/// The NEON scaling curve: [`SCALING_THREADS`] x [`SCALING_SIZES`] x
/// [`SCALING_DEPTHS`], one measured row per cell. Serial cells run only
/// at depth 1 (the pipeline degrades depth without a worker pool, so
/// deeper serial cells would duplicate the same measurement).
///
/// # Errors
///
/// Propagates pipeline errors (none occur for supported geometries).
pub fn scaling_matrix(
    frames: usize,
    columnar: bool,
    rule: FusionRule,
) -> Result<Vec<BenchRow>, FusionError> {
    let mut rows = Vec::new();
    for frame_size in SCALING_SIZES {
        let cell_frames = scaling_frames(frames.max(1), frame_size);
        for threads in SCALING_THREADS {
            for depth in SCALING_DEPTHS {
                if threads == 1 && depth > 1 {
                    continue;
                }
                rows.push(bench_case(
                    BenchCase {
                        backend: Backend::Neon,
                        threads,
                        depth,
                        frame_size,
                        frames: cell_frames,
                        warmup: BENCH_WARMUP_FRAMES.max(depth + 1),
                        rule,
                    },
                    columnar,
                )?);
            }
        }
    }
    Ok(rows)
}

/// [`pipeline_bench`] plus the [`scaling_matrix`] rows, deduplicated by
/// the six-tuple row identity `(backend, threads, columnar, frame_size,
/// depth, rule)` so the default rows are never measured twice.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn pipeline_bench_with_matrix(
    frames: usize,
    threads: Option<usize>,
    columnar: bool,
    rule: FusionRule,
) -> Result<BenchReport, FusionError> {
    let mut bench = pipeline_bench(frames, threads, columnar, (88, 72), 1, rule)?;
    for row in scaling_matrix(frames, columnar, rule)? {
        let dup = bench.rows.iter().any(|r| {
            r.backend == row.backend
                && r.threads == row.threads
                && r.columnar == row.columnar
                && r.frame_size == row.frame_size
                && r.depth == row.depth
                && r.rule == row.rule
        });
        if !dup {
            bench.rows.push(row);
        }
    }
    Ok(bench)
}

/// One measured multi-stream serving window plus its sequential baseline:
/// the same total frame budget served the naive way (one stream at a
/// time, each paying its own engine construction, worker-pool spawn, and
/// warm-up — exactly the costs the shared fleet amortizes away).
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Concurrent streams on the shared fleet.
    pub streams: usize,
    /// Timed frames per stream.
    pub frames_per_stream: usize,
    /// Worker threads of the shared pool.
    pub threads: usize,
    /// Whether the fleet ran the columnar column passes.
    pub columnar: bool,
    /// The fleet window's measurements.
    pub report: ServeReport,
    /// Wall-clock seconds of the sequential baseline.
    pub sequential_wall_s: f64,
    /// Sequential baseline throughput, frames per second.
    pub sequential_fps: f64,
    /// `aggregate_fps / sequential_fps` — cross-stream packing's payoff.
    pub speedup: f64,
}

/// Measures multi-stream serving: `streams` identical 88x72 NEON streams
/// (distinct scene seeds) on one shared `threads`-worker fleet, after a
/// [`BENCH_WARMUP_FRAMES`]-round warm-up, then the sequential baseline at
/// the same thread count and frame budget. Both sides follow the bench
/// convention of keeping the best of [`BENCH_REPS`] windows (the
/// sequential sweep constructs fresh engines every repetition — cold
/// per-stream setup is exactly what it measures).
///
/// # Errors
///
/// Propagates engine errors (none occur for supported geometries).
pub fn serve_bench(
    streams: usize,
    frames: usize,
    threads: Option<usize>,
    columnar: bool,
) -> Result<ServeBench, FusionError> {
    let streams = streams.max(1);
    let frames = frames.max(1);
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(2, usize::from)
                .clamp(2, 4)
        })
        .max(1);
    let mut mgr = StreamManager::new(FleetConfig {
        threads,
        columnar,
        max_in_flight: None,
    });
    for s in 0..streams {
        mgr.admit(StreamConfig {
            scene_seed: SCENE_SEED + s as u64,
            ..StreamConfig::default()
        })?;
    }
    // One full cold sweep: engine construction, private pool spawn, and
    // the first fuse of every stream, exactly as the baseline measures.
    let sequential_sweep = |streams: usize, frames: usize| -> Result<f64, FusionError> {
        let t0 = std::time::Instant::now();
        for s in 0..streams {
            let mut engine = FusionEngine::new(LEVELS)?;
            engine.set_columnar(columnar);
            engine.set_threads(threads);
            let scene = ScenePair::new(SCENE_SEED + s as u64);
            let mut web = WebCamera::new(scene.clone(), 88, 72);
            let mut thermal = ThermalCamera::new(scene, 88, 72);
            let mut visible = Frame::new(Image::zeros(0, 0), 0);
            let mut field = Frame::new(Image::zeros(0, 0), 0);
            for _ in 0..frames {
                thermal.capture_into(&mut field)?;
                web.capture_into(&mut visible);
                let out = engine.fuse(visible.image(), field.image(), Backend::Neon)?;
                engine.recycle(out);
            }
        }
        Ok(t0.elapsed().as_secs_f64())
    };
    // Untimed burn: push the host past its frequency/scheduler ramp-up so
    // neither side of the comparison is measured against a cold machine.
    sequential_sweep(streams, frames.min(8))?;
    // Each repetition pairs a fleet window with a temporally adjacent
    // sequential sweep, so slow drift in the host's available CPU (the
    // dominant noise on shared machines) cancels inside the pair; the
    // reported repetition is the one with the *median* paired speedup —
    // a self-consistent (window, sweep) pair, not a best-of mix. Each
    // fleet window re-warms first because the sweep's fresh engines evict
    // the fleet's working set.
    let mut reps: Vec<(ServeReport, f64)> = Vec::with_capacity(BENCH_REPS);
    for _ in 0..BENCH_REPS {
        mgr.run(BENCH_WARMUP_FRAMES)?;
        mgr.reset_latency_stats();
        let window = mgr.run(frames)?;
        let sweep_wall_s = sequential_sweep(streams, frames)?;
        reps.push((window, sweep_wall_s));
    }
    // Paired speedup is proportional to `window fps * sweep wall` (the
    // frame budget is constant), so sorting on that picks the median rep.
    reps.sort_by(|a, b| {
        (a.0.aggregate_fps * a.1)
            .partial_cmp(&(b.0.aggregate_fps * b.1))
            .expect("finite bench measurements")
    });
    let mid = reps.len() / 2;
    let (report, sequential_wall_s) = reps.swap_remove(mid);
    let sequential_fps = (streams * frames) as f64 / sequential_wall_s.max(1e-12);
    Ok(ServeBench {
        streams,
        frames_per_stream: frames,
        threads,
        columnar,
        speedup: report.aggregate_fps / sequential_fps.max(1e-12),
        report,
        sequential_wall_s,
        sequential_fps,
    })
}

/// Maps a serve window onto a [`BenchRow`] so the regression gate's
/// six-tuple row identity `(backend, threads, columnar, frame_size,
/// depth, rule)` covers serving: the backend label is `SERVE-<streams>` and the
/// kernel `fleet-shared-pool`, so serve rows never collide with
/// single-stream rows. Latency quantiles are the **worst stream's**
/// (gating fairness as well as tail latency); `frames` is per stream.
pub fn serve_row(bench: &ServeBench) -> BenchRow {
    let r = &bench.report;
    let worst_p50 = r
        .per_stream
        .iter()
        .map(|s| s.p50_latency_s)
        .fold(0.0, f64::max);
    let worst_p99 = r
        .per_stream
        .iter()
        .map(|s| s.p99_latency_s)
        .fold(0.0, f64::max);
    let power_w = wavefuse_power::PowerModel::zc702().power_w(Backend::Neon.execution_mode());
    BenchRow {
        backend: format!("SERVE-{}", bench.streams),
        threads: bench.threads,
        frame_size: (88, 72),
        depth: 1,
        frames: bench.frames_per_stream,
        kernel: "fleet-shared-pool".to_string(),
        rule: rule_label(FusionRule::WindowEnergy { radius: 1 }),
        columnar: bench.columnar,
        wall_s: r.wall_s,
        frames_per_second: r.aggregate_fps,
        ns_per_frame: r.wall_s * 1e9 / (r.total_frames.max(1) as f64),
        mean_frames_per_second: r.aggregate_fps,
        energy_mj_per_frame: r.energy_mj_per_frame,
        fps_per_watt: r.aggregate_fps / power_w.max(1e-12),
        p50_ns_per_frame: worst_p50 * 1e9,
        p99_ns_per_frame: worst_p99 * 1e9,
        phase_s: Vec::new(),
        pool_hits: 0,
        pool_misses: 0,
        pool_bytes: 0,
    }
}

/// Renders a serve window (with its per-stream breakdown and sequential
/// baseline) as a JSON object — the `repro serve --serve-out` payload.
pub fn serve_json(bench: &ServeBench) -> JsonValue {
    let r = &bench.report;
    let per_stream = r
        .per_stream
        .iter()
        .map(|s| {
            obj(vec![
                ("stream", s.stream.to_json()),
                ("backend", s.backend.to_json()),
                ("levels", s.levels.to_json()),
                ("depth", s.depth.to_json()),
                ("frame_size", s.frame_size.to_json()),
                ("frames", s.frames.to_json()),
                ("drops", s.drops.to_json()),
                ("deadline_misses", s.deadline_misses.to_json()),
                ("fps", s.fps.to_json()),
                ("p50_latency_s", s.p50_latency_s.to_json()),
                ("p99_latency_s", s.p99_latency_s.to_json()),
                ("energy_mj_per_frame", s.energy_mj_per_frame.to_json()),
            ])
        })
        .collect();
    obj(vec![
        ("streams", r.streams.to_json()),
        ("threads", r.threads.to_json()),
        ("columnar", r.columnar.to_json()),
        ("frames_per_stream", bench.frames_per_stream.to_json()),
        ("wall_s", r.wall_s.to_json()),
        ("total_frames", r.total_frames.to_json()),
        ("total_drops", r.total_drops.to_json()),
        ("aggregate_fps", r.aggregate_fps.to_json()),
        ("fairness", r.fairness.to_json()),
        ("energy_mj_per_frame", r.energy_mj_per_frame.to_json()),
        ("plan_cache_entries", r.plan_cache_entries.to_json()),
        ("plan_cache_hits", r.plan_cache_hits.to_json()),
        ("qos_infeasible", r.qos_infeasible.to_json()),
        ("sequential_wall_s", bench.sequential_wall_s.to_json()),
        ("sequential_fps", bench.sequential_fps.to_json()),
        ("speedup", bench.speedup.to_json()),
        ("per_stream", JsonValue::Arr(per_stream)),
    ])
}

/// Exact ceil-rank quantile of an ascending-sorted sample set, as f64 ns.
fn sorted_quantile_ns(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Builds a JSON object from field pairs (report-row serialization).
fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

impl ToJson for MatrixEntry {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("size", self.size.to_json()),
            ("backend", self.backend.to_json()),
            ("forward_s", self.forward_s.to_json()),
            ("fusion_s", self.fusion_s.to_json()),
            ("inverse_s", self.inverse_s.to_json()),
            ("total_s", self.total_s.to_json()),
            ("energy_mj", self.energy_mj.to_json()),
        ])
    }
}

impl ToJson for SeriesRow {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("size", self.size.to_json()),
            ("arm", self.arm.to_json()),
            ("neon", self.neon.to_json()),
            ("fpga", self.fpga.to_json()),
        ])
    }
}

impl ToJson for ResourceRow {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("resource", self.resource.to_json()),
            ("used", self.used.to_json()),
            ("available", self.available.to_json()),
            ("percent", self.percent.to_json()),
        ])
    }
}

impl ToJson for CrossoverReport {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("forward_edge", self.forward_edge.to_json()),
            ("inverse_edge", self.inverse_edge.to_json()),
            ("total_edge", self.total_edge.to_json()),
            ("energy_edge", self.energy_edge.to_json()),
        ])
    }
}

impl ToJson for PolicyOutcome {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("policy", self.policy.to_json()),
            ("total_s", self.total_s.to_json()),
            ("energy_mj", self.energy_mj.to_json()),
            (
                "backend_usage",
                self.backend_usage.as_array().as_slice().to_json(),
            ),
        ])
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("configuration", self.configuration.to_json()),
            ("forward_s", self.forward_s.to_json()),
            ("slowdown", self.slowdown.to_json()),
        ])
    }
}

impl ToJson for LevelsRow {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("levels", self.levels.to_json()),
            ("arm_s", self.arm_s.to_json()),
            ("neon_s", self.neon_s.to_json()),
            ("fpga_s", self.fpga_s.to_json()),
            ("hybrid_s", self.hybrid_s.to_json()),
            ("ll_dims", self.ll_dims.to_json()),
        ])
    }
}

impl ToJson for HybridRow {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("size", self.size.to_json()),
            ("neon_s", self.neon_s.to_json()),
            ("fpga_s", self.fpga_s.to_json()),
            ("hybrid_s", self.hybrid_s.to_json()),
            ("rows_simd", self.rows_simd.to_json()),
            ("rows_fpga", self.rows_fpga.to_json()),
        ])
    }
}

impl ToJson for ThroughputRow {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("size", self.size.to_json()),
            ("fps", self.fps.as_slice().to_json()),
        ])
    }
}

impl ToJson for QualityRow {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("method", self.method.to_json()),
            ("entropy", self.entropy.to_json()),
            ("spatial_frequency", self.spatial_frequency.to_json()),
            ("qabf", self.qabf.to_json()),
            ("mutual_information", self.mutual_information.to_json()),
        ])
    }
}

impl ToJson for BenchRow {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("backend", self.backend.to_json()),
            ("threads", self.threads.to_json()),
            ("frame_size", self.frame_size.to_json()),
            ("depth", self.depth.to_json()),
            ("frames", self.frames.to_json()),
            ("kernel", self.kernel.to_json()),
            ("rule", self.rule.to_json()),
            ("columnar", self.columnar.to_json()),
            ("wall_s", self.wall_s.to_json()),
            ("frames_per_second", self.frames_per_second.to_json()),
            ("ns_per_frame", self.ns_per_frame.to_json()),
            (
                "mean_frames_per_second",
                self.mean_frames_per_second.to_json(),
            ),
            ("energy_mj_per_frame", self.energy_mj_per_frame.to_json()),
            ("fps_per_watt", self.fps_per_watt.to_json()),
            ("p50_ns_per_frame", self.p50_ns_per_frame.to_json()),
            ("p99_ns_per_frame", self.p99_ns_per_frame.to_json()),
            (
                "phase_s",
                JsonValue::Obj(
                    self.phase_s
                        .iter()
                        .map(|(name, s)| (name.clone(), JsonValue::Num(*s)))
                        .collect(),
                ),
            ),
            ("pool_hits", self.pool_hits.to_json()),
            ("pool_misses", self.pool_misses.to_json()),
            ("pool_bytes_allocated", self.pool_bytes.to_json()),
        ])
    }
}

impl ToJson for BenchReport {
    fn to_json(&self) -> JsonValue {
        obj(vec![
            ("frame_size", self.frame_size.to_json()),
            ("levels", self.levels.to_json()),
            ("scene_seed", self.scene_seed.to_json()),
            ("warmup_frames", self.warmup_frames.to_json()),
            ("frames", self.frames.to_json()),
            ("reps", self.reps.to_json()),
            (
                "rows",
                JsonValue::Arr(self.rows.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_cells() {
        let m = collect_matrix().unwrap();
        assert_eq!(m.len(), PAPER_SIZES.len() * 3);
        let s = fig9_series(&m, Quantity::Total);
        assert_eq!(s.len(), PAPER_SIZES.len());
        // Times grow with frame size for every mode.
        for w in s.windows(2) {
            assert!(w[1].arm > w[0].arm);
        }
    }

    #[test]
    fn crossovers_land_in_paper_intervals() {
        let c = crossover_report().unwrap();
        let f = c.forward_edge.unwrap();
        assert!(f > 35 && f <= 40, "forward edge {f}");
        let t = c.total_edge.unwrap();
        assert!(t > 40 && t <= 64, "total edge {t}");
        let e = c.energy_edge.unwrap();
        assert!(e > 40 && e <= 64, "energy edge {e}");
    }

    #[test]
    fn adaptive_beats_both_fixed_accelerators() {
        let outcomes = adaptive_comparison().unwrap();
        let get = |label: &str| {
            outcomes
                .iter()
                .find(|o| o.policy.starts_with(label))
                .expect("policy present")
        };
        let neon = get("fixed NEON").total_s;
        let fpga = get("fixed FPGA").total_s;
        let adaptive = get("adaptive (model, time)").total_s;
        assert!(adaptive <= neon + 1e-9, "{adaptive} vs neon {neon}");
        assert!(adaptive <= fpga + 1e-9, "{adaptive} vs fpga {fpga}");
        // And it genuinely mixes both accelerators.
        let usage = get("adaptive (model, time)").backend_usage;
        assert!(
            usage[Backend::Neon] > 0 && usage[Backend::Fpga] > 0,
            "usage {usage:?}"
        );
    }

    #[test]
    fn ablations_show_the_design_choices_pay() {
        let rows = ablation_report().unwrap();
        assert!((rows[0].slowdown - 1.0).abs() < 1e-12);
        assert!(rows[1].slowdown > 1.0, "double buffering must help");
        assert!(
            rows[2].slowdown > rows[1].slowdown,
            "GP port must be the worst"
        );
    }

    #[test]
    fn deeper_levels_cost_geometrically_less() {
        let rows = levels_sweep().unwrap();
        assert_eq!(rows.len(), 5);
        // Marginal cost of each extra level shrinks on every backend.
        for w in rows.windows(2) {
            assert!(w[1].arm_s > w[0].arm_s, "more levels, more work");
        }
        let d12 = rows[1].arm_s - rows[0].arm_s;
        let d45 = rows[4].arm_s - rows[3].arm_s;
        assert!(
            d45 < 0.5 * d12,
            "marginal level cost must decay: {d12} vs {d45}"
        );
        // The LL band shrinks by half per level.
        assert_eq!(rows[0].ll_dims, (44, 36));
        assert_eq!(rows[2].ll_dims, (11, 9));
    }

    #[test]
    fn throughput_ordering_and_scale() {
        let rows = throughput_report().unwrap();
        // At the paper's 88x72 full frames, the FPGA sustains ~11 fps and
        // the hybrid slightly more; ARM manages ~6.
        let full = rows.last().unwrap();
        assert!(
            full.fps[0] > 3.0 && full.fps[0] < 10.0,
            "ARM {}",
            full.fps[0]
        );
        assert!(full.fps[2] > full.fps[1], "FPGA beats NEON at 88x72");
        assert!(full.fps[3] >= full.fps[2], "hybrid at least matches FPGA");
        // Small frames run far faster than large ones everywhere.
        assert!(rows[0].fps[1] > 2.0 * full.fps[1]);
    }

    #[test]
    fn hybrid_dominates_both_pure_accelerators() {
        for row in hybrid_comparison().unwrap() {
            assert!(
                row.hybrid_s <= row.neon_s + 1e-9 && row.hybrid_s <= row.fpga_s + 1e-9,
                "{:?}: hybrid {} vs neon {} fpga {}",
                row.size,
                row.hybrid_s,
                row.neon_s,
                row.fpga_s
            );
            assert!(row.rows_simd > 0, "{:?}: no SIMD rows", row.size);
        }
    }

    #[test]
    fn quality_ranking_favors_dtcwt() {
        let rows = quality_comparison(88, 72).unwrap();
        let get = |m: &str| {
            rows.iter()
                .find(|r| r.method.starts_with(m))
                .expect("method present")
                .clone()
        };
        let avg = get("averaging");
        let ours = get("dt-cwt, window-energy");
        assert!(ours.qabf > avg.qabf, "{} vs {}", ours.qabf, avg.qabf);
        assert!(ours.spatial_frequency > avg.spatial_frequency);
    }
}

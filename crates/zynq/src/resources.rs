//! Analytic HLS resource estimator (paper Table I).
//!
//! Without Vivado in the loop, utilization is estimated from the engine's
//! architecture: each hardware MAC lane (one multiplier + adder of the
//! single-precision datapath, with HLS pipeline registers) contributes a
//! fixed register/LUT/slice cost, on top of a base cost for the AXI
//! interfaces, the DMA `memcpy` engines, the BRAM controllers and the
//! control FSM. The per-MAC and base constants are calibrated so that the
//! paper's 12-tap engine lands exactly on Table I:
//!
//! | resource  | used  | available | % |
//! |-----------|-------|-----------|----|
//! | Registers | 23412 | 106400    | 22 |
//! | LUTs      | 17405 | 53200     | 32 |
//! | Slices    | 7890  | 13300     | 59 |
//! | BUFG      | 3     | 32        | 9  |

/// Device capacities of the xc7z020clg484-1 on the ZC702 board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCapacity {
    /// Flip-flops.
    pub registers: u64,
    /// Look-up tables.
    pub luts: u64,
    /// Slices.
    pub slices: u64,
    /// Global clock buffers.
    pub bufg: u64,
}

/// The xc7z020clg484-1 (paper Table I's "Available" column).
pub const XC7Z020: DeviceCapacity = DeviceCapacity {
    registers: 106_400,
    luts: 53_200,
    slices: 13_300,
    bufg: 32,
};

/// Estimated utilization of a wavelet-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Utilization {
    /// Flip-flops used.
    pub registers: u64,
    /// LUTs used.
    pub luts: u64,
    /// Slices used.
    pub slices: u64,
    /// Clock buffers used.
    pub bufg: u64,
}

impl Utilization {
    /// Percentage of `cap` used, per resource, rounded to the nearest
    /// percent (as Table I reports).
    pub fn percentages(&self, cap: &DeviceCapacity) -> [u64; 4] {
        let pct = |u: u64, a: u64| ((u as f64 / a as f64) * 100.0).round() as u64;
        [
            pct(self.registers, cap.registers),
            pct(self.luts, cap.luts),
            pct(self.slices, cap.slices),
            pct(self.bufg, cap.bufg),
        ]
    }

    /// Whether the configuration fits the device.
    pub fn fits(&self, cap: &DeviceCapacity) -> bool {
        self.registers <= cap.registers
            && self.luts <= cap.luts
            && self.slices <= cap.slices
            && self.bufg <= cap.bufg
    }
}

// Calibration: the paper's engine has 12 taps and two filters, i.e. 24 MAC
// lanes. Solving `base + 24 * per_mac = Table I` with per-MAC costs typical
// of a pipelined fp32 multiply-add in 7-series HLS output:
const REGS_PER_MAC: u64 = 650;
const REGS_BASE: u64 = 23_412 - 24 * REGS_PER_MAC; // 7812: AXI + DMA + FSM
const LUTS_PER_MAC: u64 = 470;
const LUTS_BASE: u64 = 17_405 - 24 * LUTS_PER_MAC; // 6125
const SLICES_PER_MAC: u64 = 220;
const SLICES_BASE: u64 = 7_890 - 24 * SLICES_PER_MAC; // 2610
/// Engine clock, AXI interconnect clock, and the DMA stream clock.
const BUFG_COUNT: u64 = 3;

/// Estimates utilization for a dual-filter engine with the given coefficient
/// register depth (taps per filter).
///
/// # Examples
///
/// ```
/// use wavefuse_zynq::resources::{estimate, XC7Z020};
///
/// // The paper's 12-tap engine reproduces Table I exactly.
/// let u = estimate(12);
/// assert_eq!(u.registers, 23_412);
/// assert_eq!(u.percentages(&XC7Z020), [22, 33, 59, 9]);
/// ```
pub fn estimate(taps: usize) -> Utilization {
    let macs = 2 * taps as u64; // lowpass + highpass lanes
    Utilization {
        registers: REGS_BASE + macs * REGS_PER_MAC,
        luts: LUTS_BASE + macs * LUTS_PER_MAC,
        slices: SLICES_BASE + macs * SLICES_PER_MAC,
        bufg: BUFG_COUNT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_tap_engine_reproduces_table_one() {
        let u = estimate(12);
        assert_eq!(u.registers, 23_412);
        assert_eq!(u.luts, 17_405);
        assert_eq!(u.slices, 7_890);
        assert_eq!(u.bufg, 3);
        assert!(u.fits(&XC7Z020));
    }

    #[test]
    fn table_one_percentages() {
        // Paper reports 22 % / 32 % / 59 % / 9 %; rounding of 17405/53200
        // gives 33 % (the paper floors), so allow either.
        let p = estimate(12).percentages(&XC7Z020);
        assert_eq!(p[0], 22);
        assert!(p[1] == 32 || p[1] == 33);
        assert_eq!(p[2], 59);
        assert_eq!(p[3], 9);
    }

    #[test]
    fn utilization_grows_with_taps() {
        let small = estimate(12);
        let big = estimate(20);
        assert!(big.registers > small.registers);
        assert!(big.luts > small.luts);
        assert!(big.slices > small.slices);
        assert_eq!(big.bufg, small.bufg);
    }

    #[test]
    fn twenty_tap_deployment_still_fits_device() {
        // Our deployed engine hosts up to 20 taps; it must fit the xc7z020.
        assert!(estimate(20).fits(&XC7Z020));
    }

    #[test]
    fn overgrown_engine_does_not_fit() {
        // Sanity: the model does predict exhaustion eventually (slices are
        // the binding constraint, as in Table I).
        let huge = estimate(64);
        assert!(!huge.fits(&XC7Z020));
    }
}

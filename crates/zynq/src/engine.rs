//! The HLS wavelet engine: the paper's Fig. 4 datapath, simulated at cycle
//! level.
//!
//! The synthesized core is a fixed-geometry machine: two coefficient
//! register banks (`coeff_register_hp`, `coeff_register_lp`) feeding a MAC
//! pair per clock from a shared input shift register, BRAM line buffers
//! loaded and drained by a hardware `memcpy` over the ACP, and an AXI4-Lite
//! command interface selecting one of three modes (coefficient load,
//! forward, inverse). VIVADO_HLS pipelines the sample loop to an initiation
//! interval of one clock; the `memcpy`s do not overlap the loop ("current
//! VIVADO_HLS tools do not pipeline the memcpy's"), so a row costs
//! `dma_in + fill + iterations + dma_out` PL cycles — the model used here.
//!
//! The datapath *really computes* the filter outputs by shifting samples
//! through the register exactly as the HLS code does, so engine results are
//! verified against the scalar software kernel in the tests below.

use crate::bus::{acp_burst_pl_cycles, AxiLiteRegisterFile, EngineMode, EngineReg};
use crate::config::ZynqConfig;
use crate::ZynqError;

/// Engine status values visible in the [`EngineReg::Status`] register.
pub mod status {
    /// Engine idle, no command issued since reset.
    pub const IDLE: u32 = 0;
    /// Transform in flight.
    pub const BUSY: u32 = 1;
    /// Last commanded transform (or coefficient load) completed.
    pub const DONE: u32 = 2;
}

/// Cost and traffic of one engine invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineRun {
    /// PL cycles consumed (DMA + pipeline).
    pub pl_cycles: u64,
    /// Words streamed into the engine.
    pub words_in: usize,
    /// Words streamed out of the engine.
    pub words_out: usize,
}

/// A row pass in flight, returned by the `submit_*` half of the split
/// interface. The engine stays [`status::BUSY`] until the ticket is redeemed
/// with [`WaveletEngine::wait`], which retires the run and flips the status
/// register to [`status::DONE`] — the handshake the PS uses to overlap its
/// own work with the PL engine.
#[derive(Debug)]
#[must_use = "a submitted row stays BUSY until waited on"]
pub struct RowTicket {
    run: EngineRun,
}

impl RowTicket {
    /// Cycle cost and traffic of the in-flight run (known at submit time in
    /// the model; the real engine exposes it once DONE).
    pub fn run(&self) -> EngineRun {
        self.run
    }
}

/// The simulated PL wavelet engine.
///
/// # Examples
///
/// ```
/// use wavefuse_zynq::engine::WaveletEngine;
/// use wavefuse_zynq::ZynqConfig;
///
/// let mut eng = WaveletEngine::new(ZynqConfig::default());
/// // Haar filters, sqrt(2)-normalized.
/// let h = std::f32::consts::FRAC_1_SQRT_2;
/// eng.load_analysis_filters(&[h, h], &[h, -h])?;
/// let ext = [4.0f32, 1.0, 2.0, 3.0, 4.0, 1.0]; // x = [1,2,3,4], left = 1
/// let (mut lo, mut hi) = (vec![0.0; 2], vec![0.0; 2]);
/// eng.forward_row(&ext, 1, 1, &mut lo, &mut hi)?;
/// assert!((lo[0] - h * 3.0).abs() < 1e-6);
/// # Ok::<(), wavefuse_zynq::ZynqError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WaveletEngine {
    cfg: ZynqConfig,
    regs: AxiLiteRegisterFile,
    // Analysis coefficient registers: reversed and front-padded to the
    // hardware depth, so the newest sample meets the last tap.
    c_lp: Vec<f32>,
    c_hp: Vec<f32>,
    // Synthesis polyphase coefficient registers (even/odd taps of g0/g1),
    // reversed and front-padded.
    s_lp_even: Vec<f32>,
    s_lp_odd: Vec<f32>,
    s_hp_even: Vec<f32>,
    s_hp_odd: Vec<f32>,
    // Shadow copies of the loaded taps for cache checks.
    loaded_analysis: Option<(Vec<f32>, Vec<f32>)>,
    loaded_synthesis: Option<(Vec<f32>, Vec<f32>)>,
    // The datapath's input shift register, persistent so steady-state row
    // passes never touch the allocator.
    sr: Vec<f32>,
}

impl WaveletEngine {
    /// Instantiates the engine with the given platform configuration.
    pub fn new(cfg: ZynqConfig) -> Self {
        let t = cfg.max_taps;
        WaveletEngine {
            cfg,
            regs: AxiLiteRegisterFile::new(),
            c_lp: vec![0.0; t],
            c_hp: vec![0.0; t],
            s_lp_even: vec![0.0; t / 2 + 1],
            s_lp_odd: vec![0.0; t / 2 + 1],
            s_hp_even: vec![0.0; t / 2 + 1],
            s_hp_odd: vec![0.0; t / 2 + 1],
            loaded_analysis: None,
            loaded_synthesis: None,
            sr: vec![0.0; t],
        }
    }

    /// Platform configuration.
    pub fn config(&self) -> &ZynqConfig {
        &self.cfg
    }

    /// AXI4-Lite register file (for inspection).
    pub fn registers(&self) -> &AxiLiteRegisterFile {
        &self.regs
    }

    /// Mutable AXI4-Lite register file (the PS pokes commands through this).
    pub fn registers_mut(&mut self) -> &mut AxiLiteRegisterFile {
        &mut self.regs
    }

    /// Whether `h0`/`h1` are the currently loaded analysis filters.
    pub fn analysis_filters_match(&self, h0: &[f32], h1: &[f32]) -> bool {
        matches!(&self.loaded_analysis, Some((a, b)) if a == h0 && b == h1)
    }

    /// Whether `g0`/`g1` are the currently loaded synthesis filters.
    pub fn synthesis_filters_match(&self, g0: &[f32], g1: &[f32]) -> bool {
        matches!(&self.loaded_synthesis, Some((a, b)) if a == g0 && b == g1)
    }

    /// Loads the analysis filter pair (mode 1), returning the PS cycles the
    /// coefficient writes cost over AXI4-Lite.
    ///
    /// # Errors
    ///
    /// Returns [`ZynqError::FilterTooLong`] if either filter exceeds the
    /// hardware register depth.
    pub fn load_analysis_filters(&mut self, h0: &[f32], h1: &[f32]) -> Result<u64, ZynqError> {
        let t = self.cfg.max_taps;
        for f in [h0, h1] {
            if f.len() > t {
                return Err(ZynqError::FilterTooLong {
                    taps: f.len(),
                    max_taps: t,
                });
            }
        }
        fill_reversed_front_padded(&mut self.c_lp, h0);
        fill_reversed_front_padded(&mut self.c_hp, h1);
        store_shadow(&mut self.loaded_analysis, h0, h1);
        let mut ps = self.regs.write(
            EngineReg::Mode,
            EngineMode::LoadCoefficients.encode(),
            &self.cfg,
        );
        // One register write per coefficient slot of both banks.
        ps += 2 * t as u64 * self.cfg.axil_write_ps_cycles;
        Ok(ps)
    }

    /// Loads the synthesis filter pair (mode 1), returning PS cycles.
    ///
    /// # Errors
    ///
    /// Returns [`ZynqError::FilterTooLong`] if either filter exceeds the
    /// hardware register depth.
    pub fn load_synthesis_filters(&mut self, g0: &[f32], g1: &[f32]) -> Result<u64, ZynqError> {
        let t = self.cfg.max_taps;
        for f in [g0, g1] {
            if f.len() > t {
                return Err(ZynqError::FilterTooLong {
                    taps: f.len(),
                    max_taps: t,
                });
            }
        }
        fill_polyphase(&mut self.s_lp_even, &mut self.s_lp_odd, g0);
        fill_polyphase(&mut self.s_hp_even, &mut self.s_hp_odd, g1);
        store_shadow(&mut self.loaded_synthesis, g0, g1);
        let mut ps = self.regs.write(
            EngineReg::Mode,
            EngineMode::LoadCoefficients.encode(),
            &self.cfg,
        );
        ps += 2 * t as u64 * self.cfg.axil_write_ps_cycles;
        Ok(ps)
    }

    /// Runs one forward (decimating) row through the datapath (mode 2),
    /// blocking until DONE: equivalent to [`Self::submit_forward_row`]
    /// immediately followed by [`Self::wait`].
    ///
    /// Semantics match [`wavefuse_dtcwt::FilterKernel::analyze_row`]: `ext`
    /// is the extended row, outputs `k` use the window ending at
    /// `left + 2k + phase`.
    ///
    /// # Errors
    ///
    /// * [`ZynqError::CoefficientsNotLoaded`] before a coefficient load.
    /// * [`ZynqError::BufferOverrun`] if the row exceeds a BRAM area.
    pub fn forward_row(
        &mut self,
        ext: &[f32],
        left: usize,
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) -> Result<EngineRun, ZynqError> {
        let ticket = self.submit_forward_row(ext, left, phase, lo, hi)?;
        Ok(self.wait(ticket))
    }

    /// Arms one forward row and returns without the completion handshake:
    /// the status register reads [`status::BUSY`] until the returned ticket
    /// is redeemed with [`Self::wait`], letting the PS overlap other work
    /// with the in-flight run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::forward_row`].
    pub fn submit_forward_row(
        &mut self,
        ext: &[f32],
        left: usize,
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) -> Result<RowTicket, ZynqError> {
        if self.loaded_analysis.is_none() {
            return Err(ZynqError::CoefficientsNotLoaded);
        }
        let bram = self.cfg.bram_words_per_buffer;
        if ext.len() > bram {
            return Err(ZynqError::BufferOverrun {
                what: "input bram",
                requested: ext.len(),
                capacity: bram,
            });
        }
        let n_out = lo.len();
        if 2 * n_out > bram {
            return Err(ZynqError::BufferOverrun {
                what: "output bram",
                requested: 2 * n_out,
                capacity: bram,
            });
        }

        self.regs.hw_set(EngineReg::Status, status::BUSY);
        let t = self.cfg.max_taps;
        self.sr.fill(0.0);
        let at = |p: isize| -> f32 {
            if p >= 0 && (p as usize) < ext.len() {
                ext[p as usize]
            } else {
                // Virtual zeros under the zero-padded coefficient slots.
                0.0
            }
        };

        // Warm the shift register up to the first output's window.
        let c0 = (left + phase) as isize;
        for p in (c0 - t as isize + 1)..=c0 {
            shift_in(&mut self.sr, at(p));
        }
        emit(&self.sr, &self.c_lp, &self.c_hp, &mut lo[0], &mut hi[0]);
        for k in 1..n_out {
            let c = c0 + 2 * k as isize;
            shift_in(&mut self.sr, at(c - 1));
            shift_in(&mut self.sr, at(c));
            emit(&self.sr, &self.c_lp, &self.c_hp, &mut lo[k], &mut hi[k]);
        }

        let words_in = ext.len();
        let words_out = 2 * n_out;
        let pl_cycles = acp_burst_pl_cycles(words_in, &self.cfg)
            + self.cfg.pipeline_flush_pl_cycles
            + n_out as u64
            + acp_burst_pl_cycles(words_out, &self.cfg);
        Ok(RowTicket {
            run: EngineRun {
                pl_cycles,
                words_in,
                words_out,
            },
        })
    }

    /// Runs one inverse (interpolating) row through the datapath (mode 3),
    /// blocking until DONE: equivalent to [`Self::submit_inverse_row`]
    /// immediately followed by [`Self::wait`].
    ///
    /// Semantics match [`wavefuse_dtcwt::FilterKernel::synthesize_row`].
    ///
    /// # Errors
    ///
    /// * [`ZynqError::CoefficientsNotLoaded`] before a coefficient load.
    /// * [`ZynqError::BufferOverrun`] if the channels exceed a BRAM area.
    pub fn inverse_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        phase: usize,
        out: &mut [f32],
    ) -> Result<EngineRun, ZynqError> {
        let ticket = self.submit_inverse_row(lo_ext, hi_ext, left, phase, out)?;
        Ok(self.wait(ticket))
    }

    /// Arms one inverse row without the completion handshake; see
    /// [`Self::submit_forward_row`] for the split-interface contract.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::inverse_row`].
    pub fn submit_inverse_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        phase: usize,
        out: &mut [f32],
    ) -> Result<RowTicket, ZynqError> {
        if self.loaded_synthesis.is_none() {
            return Err(ZynqError::CoefficientsNotLoaded);
        }
        let bram = self.cfg.bram_words_per_buffer;
        let words_in = lo_ext.len() + hi_ext.len();
        if words_in > bram {
            return Err(ZynqError::BufferOverrun {
                what: "input bram",
                requested: words_in,
                capacity: bram,
            });
        }
        if out.len() > bram {
            return Err(ZynqError::BufferOverrun {
                what: "output bram",
                requested: out.len(),
                capacity: bram,
            });
        }

        self.regs.hw_set(EngineReg::Status, status::BUSY);
        // One output per clock: each cycle the two polyphase MAC banks of
        // the active parity fire over the channel windows.
        for (m, o) in out.iter_mut().enumerate() {
            let mp = m as isize - phase as isize;
            let parity = (mp & 1) as usize;
            let (t_lp, t_hp) = if parity == 0 {
                (&self.s_lp_even, &self.s_hp_even)
            } else {
                (&self.s_lp_odd, &self.s_hp_odd)
            };
            let k_top = (mp - parity as isize) / 2;
            *o = window_dot(lo_ext, left as isize + k_top, t_lp)
                + window_dot(hi_ext, left as isize + k_top, t_hp);
        }

        let words_out = out.len();
        let pl_cycles = acp_burst_pl_cycles(words_in, &self.cfg)
            + self.cfg.pipeline_flush_pl_cycles
            + words_out as u64
            + acp_burst_pl_cycles(words_out, &self.cfg);
        Ok(RowTicket {
            run: EngineRun {
                pl_cycles,
                words_in,
                words_out,
            },
        })
    }

    /// Retires an in-flight row: flips the status register to
    /// [`status::DONE`], performs the PS's completion poll, and returns the
    /// run's cycle accounting.
    pub fn wait(&mut self, ticket: RowTicket) -> EngineRun {
        self.regs.hw_set(EngineReg::Status, status::DONE);
        self.regs.read(EngineReg::Status); // completion poll
        ticket.run
    }
}

/// Refreshes a loaded-filter shadow copy in place, reusing its allocations
/// so steady-state coefficient reloads stay off the allocator.
fn store_shadow(slot: &mut Option<(Vec<f32>, Vec<f32>)>, a: &[f32], b: &[f32]) {
    match slot {
        Some((sa, sb)) => {
            sa.clear();
            sa.extend_from_slice(a);
            sb.clear();
            sb.extend_from_slice(b);
        }
        None => *slot = Some((a.to_vec(), b.to_vec())),
    }
}

/// Shifts one sample into the register (oldest at index 0), as the HLS
/// code's `shift_register[j - 1] = shift_register[j + 1]` cascade does.
#[inline]
fn shift_in(sr: &mut [f32], v: f32) {
    sr.copy_within(1.., 0);
    let last = sr.len() - 1;
    sr[last] = v;
}

/// The per-clock MAC pair: both coefficient banks against the shared
/// shift register.
#[inline]
fn emit(sr: &[f32], c_lp: &[f32], c_hp: &[f32], lo: &mut f32, hi: &mut f32) {
    let mut lp_acc = 0.0f32;
    let mut hp_acc = 0.0f32;
    for j in 0..sr.len() {
        lp_acc += c_lp[j] * sr[j];
        hp_acc += c_hp[j] * sr[j];
    }
    *lo = lp_acc;
    *hi = hp_acc;
}

/// Dot product of a front-padded reversed coefficient bank against the
/// channel window ending at absolute index `top`.
#[inline]
fn window_dot(ch: &[f32], top: isize, taps: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    let t = taps.len() as isize;
    for (i, &c) in taps.iter().enumerate() {
        let p = top - (t - 1) + i as isize;
        if c != 0.0 && p >= 0 && (p as usize) < ch.len() {
            acc += c * ch[p as usize];
        }
    }
    acc
}

fn fill_reversed_front_padded(dst: &mut [f32], taps: &[f32]) {
    dst.fill(0.0);
    let off = dst.len() - taps.len();
    for (i, &v) in taps.iter().rev().enumerate() {
        dst[off + i] = v;
    }
}

fn fill_polyphase(even: &mut [f32], odd: &mut [f32], taps: &[f32]) {
    // Even/odd tap subsequences, reversed and front-padded like the analysis
    // banks — written directly so reloads never allocate.
    even.fill(0.0);
    odd.fill(0.0);
    let ne = taps.len().div_ceil(2);
    let no = taps.len() / 2;
    let off_e = even.len() - ne;
    let off_o = odd.len() - no;
    for (i, &v) in taps.iter().step_by(2).enumerate() {
        even[off_e + (ne - 1 - i)] = v;
    }
    for (i, &v) in taps.iter().skip(1).step_by(2).enumerate() {
        odd[off_o + (no - 1 - i)] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::dwt1d::{analyze, synthesize, BankTaps, Phase};
    use wavefuse_dtcwt::{FilterBank, FilterKernel, ScalarKernel};

    fn signal(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * i + 3) % 17) as f32 * 0.5 - 4.0)
            .collect()
    }

    #[test]
    fn forward_matches_scalar_kernel() {
        for bank in [
            FilterBank::haar().unwrap(),
            FilterBank::near_sym_b().unwrap(),
            FilterBank::qshift_b().unwrap(),
        ] {
            let taps = BankTaps::new(&bank);
            let x = signal(40);
            for phase in [0usize, 1] {
                // Scalar reference through the public 1-D API.
                let mut sc = ScalarKernel::new();
                let (lo_ref, hi_ref) = analyze(
                    &mut sc,
                    &taps,
                    &x,
                    if phase == 0 { Phase::A } else { Phase::B },
                )
                .unwrap();
                // Engine path on the identical extended row.
                let mut ext = Vec::new();
                wavefuse_dtcwt::dwt1d::extend_circular_into(
                    &x,
                    taps.h0.len().max(taps.h1.len()),
                    taps.h0.len().max(taps.h1.len()),
                    &mut ext,
                );
                let left = taps.h0.len().max(taps.h1.len());
                let mut eng = WaveletEngine::new(ZynqConfig::default());
                eng.load_analysis_filters(&taps.h0, &taps.h1).unwrap();
                let (mut lo, mut hi) = (vec![0.0f32; 20], vec![0.0f32; 20]);
                eng.forward_row(&ext, left, phase, &mut lo, &mut hi)
                    .unwrap();
                for i in 0..20 {
                    assert!(
                        (lo[i] - lo_ref[i]).abs() < 1e-4,
                        "{} lo[{i}] {} vs {}",
                        bank.name(),
                        lo[i],
                        lo_ref[i]
                    );
                    assert!((hi[i] - hi_ref[i]).abs() < 1e-4, "{} hi[{i}]", bank.name());
                }
            }
        }
    }

    #[test]
    fn inverse_matches_scalar_kernel() {
        let bank = FilterBank::cdf_9_7().unwrap();
        let taps = BankTaps::new(&bank);
        let x = signal(32);
        let mut sc = ScalarKernel::new();
        let (lo, hi) = analyze(&mut sc, &taps, &x, Phase::A).unwrap();
        let reference = synthesize(&mut sc, &taps, &lo, &hi, Phase::A).unwrap();

        // Engine path: same extended channels, raw (unrotated) output, then
        // apply the same delay rotation the 1-D layer applies.
        let left = taps.g0.len().max(taps.g1.len()) / 2 + 5;
        let mut lo_ext = Vec::new();
        let mut hi_ext = Vec::new();
        wavefuse_dtcwt::dwt1d::extend_circular_into(&lo, left, 0, &mut lo_ext);
        wavefuse_dtcwt::dwt1d::extend_circular_into(&hi, left, 0, &mut hi_ext);
        let mut eng = WaveletEngine::new(ZynqConfig::default());
        eng.load_synthesis_filters(&taps.g0, &taps.g1).unwrap();
        let mut raw = vec![0.0f32; 32];
        eng.inverse_row(&lo_ext, &hi_ext, left, 0, &mut raw)
            .unwrap();
        // Compare against the scalar kernel's raw output.
        let mut sc_raw = vec![0.0f32; 32];
        sc.synthesize_row(&lo_ext, &hi_ext, left, &taps.g0, &taps.g1, 0, &mut sc_raw);
        for i in 0..32 {
            assert!((raw[i] - sc_raw[i]).abs() < 1e-4, "raw[{i}]");
        }
        // And the rotated result reconstructs the input.
        let d = taps.delay() % 32;
        for m in 0..32 {
            let v = raw[(m + d) % 32];
            assert!((v - reference[m]).abs() < 1e-4, "rotated[{m}]");
        }
    }

    #[test]
    fn engine_requires_coefficient_load() {
        let mut eng = WaveletEngine::new(ZynqConfig::default());
        let mut lo = vec![0.0f32; 2];
        let mut hi = vec![0.0f32; 2];
        assert_eq!(
            eng.forward_row(&[0.0; 8], 2, 0, &mut lo, &mut hi),
            Err(ZynqError::CoefficientsNotLoaded)
        );
        let mut out = vec![0.0f32; 4];
        assert_eq!(
            eng.inverse_row(&[0.0; 8], &[0.0; 8], 4, 0, &mut out),
            Err(ZynqError::CoefficientsNotLoaded)
        );
    }

    #[test]
    fn oversized_filter_rejected() {
        let mut eng = WaveletEngine::new(ZynqConfig::default());
        let too_long = vec![0.1f32; 21];
        assert!(matches!(
            eng.load_analysis_filters(&too_long, &too_long),
            Err(ZynqError::FilterTooLong { taps: 21, .. })
        ));
    }

    #[test]
    fn bram_capacity_enforced() {
        let cfg = ZynqConfig::default();
        let mut eng = WaveletEngine::new(cfg.clone());
        let h = std::f32::consts::FRAC_1_SQRT_2;
        eng.load_analysis_filters(&[h, h], &[h, -h]).unwrap();
        let huge = vec![0.0f32; cfg.bram_words_per_buffer + 1];
        let mut lo = vec![0.0f32; 4];
        let mut hi = vec![0.0f32; 4];
        assert!(matches!(
            eng.forward_row(&huge, 2, 0, &mut lo, &mut hi),
            Err(ZynqError::BufferOverrun { .. })
        ));
    }

    #[test]
    fn cycle_count_is_transfer_plus_pipeline() {
        let cfg = ZynqConfig::default();
        let mut eng = WaveletEngine::new(cfg.clone());
        let h = std::f32::consts::FRAC_1_SQRT_2;
        eng.load_analysis_filters(&[h, h], &[h, -h]).unwrap();
        let ext = vec![1.0f32; 100];
        let mut lo = vec![0.0f32; 44];
        let mut hi = vec![0.0f32; 44];
        let run = eng.forward_row(&ext, 6, 0, &mut lo, &mut hi).unwrap();
        let expect = acp_burst_pl_cycles(100, &cfg)
            + cfg.pipeline_flush_pl_cycles
            + 44
            + acp_burst_pl_cycles(88, &cfg);
        assert_eq!(run.pl_cycles, expect);
        assert_eq!(run.words_in, 100);
        assert_eq!(run.words_out, 88);
    }

    #[test]
    fn status_register_lifecycle() {
        let mut eng = WaveletEngine::new(ZynqConfig::default());
        use crate::bus::EngineReg;
        assert_eq!(eng.registers().read(EngineReg::Status), status::IDLE);
        let h = std::f32::consts::FRAC_1_SQRT_2;
        eng.load_analysis_filters(&[h, h], &[h, -h]).unwrap();
        let ext = vec![1.0f32; 12];
        let (mut lo, mut hi) = (vec![0.0f32; 4], vec![0.0f32; 4]);
        eng.forward_row(&ext, 2, 0, &mut lo, &mut hi).unwrap();
        assert_eq!(eng.registers().read(EngineReg::Status), status::DONE);
    }

    #[test]
    fn split_submit_wait_reports_busy_until_waited() {
        let mut eng = WaveletEngine::new(ZynqConfig::default());
        use crate::bus::EngineReg;
        let h = std::f32::consts::FRAC_1_SQRT_2;
        eng.load_analysis_filters(&[h, h], &[h, -h]).unwrap();
        let ext = vec![1.0f32; 12];
        let (mut lo, mut hi) = (vec![0.0f32; 4], vec![0.0f32; 4]);
        let ticket = eng
            .submit_forward_row(&ext, 2, 0, &mut lo, &mut hi)
            .unwrap();
        assert_eq!(eng.registers().read(EngineReg::Status), status::BUSY);
        let run = eng.wait(ticket);
        assert_eq!(eng.registers().read(EngineReg::Status), status::DONE);
        assert_eq!(run.words_in, 12);
        assert_eq!(run.words_out, 8);
        // Split and blocking paths charge identical cycles.
        let blocking = eng.forward_row(&ext, 2, 0, &mut lo, &mut hi).unwrap();
        assert_eq!(blocking, run);
    }

    #[test]
    fn filter_cache_checks() {
        let mut eng = WaveletEngine::new(ZynqConfig::default());
        let h = std::f32::consts::FRAC_1_SQRT_2;
        assert!(!eng.analysis_filters_match(&[h, h], &[h, -h]));
        eng.load_analysis_filters(&[h, h], &[h, -h]).unwrap();
        assert!(eng.analysis_filters_match(&[h, h], &[h, -h]));
        assert!(!eng.analysis_filters_match(&[h, h], &[h, h]));
    }
}

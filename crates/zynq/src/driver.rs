//! The kernel-level Linux driver model (paper §V, Fig. 5).
//!
//! The real system allocates DMA-able memory with `kmalloc`, exposes it to
//! user space through `mmap`, and controls read/write offsets through
//! `ioctl` so the application and the accelerator can ping-pong between two
//! halves of each buffer — overlapping the user-space `memcpy` of one row
//! with the hardware processing of the previous. This module models that
//! interface faithfully enough to preserve its two performance-relevant
//! behaviors: the per-request driver overhead and the double-buffer overlap.

use std::sync::Arc;

use wavefuse_trace::Telemetry;

use crate::config::ZynqConfig;
use crate::ZynqError;

/// `ioctl` requests understood by the driver, mirroring the offset controls
/// described in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoctlRequest {
    /// Set the byte offset (in words here) at which the accelerator reads
    /// from the input area.
    SetReadOffset(usize),
    /// Set the word offset at which the accelerator writes the output area.
    SetWriteOffset(usize),
    /// Flip both ping-pong buffers.
    SwapBuffers,
}

/// Usage counters kept by the driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// `ioctl` requests served.
    pub ioctls: u64,
    /// Words copied from user space into the DMA area.
    pub words_from_user: u64,
    /// Words copied from the DMA area back to user space.
    pub words_to_user: u64,
    /// Ping-pong swaps performed.
    pub buffer_swaps: u64,
}

/// The wavelet-engine character-device driver model.
///
/// # Examples
///
/// ```
/// use wavefuse_zynq::driver::{IoctlRequest, WaveletDriver};
/// use wavefuse_zynq::ZynqConfig;
///
/// let mut drv = WaveletDriver::open(ZynqConfig::default());
/// drv.ioctl(IoctlRequest::SetReadOffset(0))?;
/// let cycles = drv.copy_from_user(&[1.0, 2.0, 3.0])?;
/// assert!(cycles > 0);
/// assert_eq!(drv.accelerator_input(3)?, &[1.0, 2.0, 3.0]);
/// # Ok::<(), wavefuse_zynq::ZynqError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WaveletDriver {
    cfg: ZynqConfig,
    /// Two ping-pong input areas (the paper: 4096 words split in two).
    in_areas: [Vec<f32>; 2],
    /// Two ping-pong output areas.
    out_areas: [Vec<f32>; 2],
    active: usize,
    read_offset: usize,
    write_offset: usize,
    stats: DriverStats,
    telemetry: Option<Arc<Telemetry>>,
}

impl WaveletDriver {
    /// Opens the device, `kmalloc`-ing both DMA areas.
    pub fn open(cfg: ZynqConfig) -> Self {
        let words = cfg.bram_words_per_buffer;
        WaveletDriver {
            cfg,
            in_areas: [vec![0.0; words], vec![0.0; words]],
            out_areas: [vec![0.0; words], vec![0.0; words]],
            active: 0,
            read_offset: 0,
            write_offset: 0,
            stats: DriverStats::default(),
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle: `ioctl` round trips, user-copy word
    /// volumes and ping-pong swaps feed counters from here on.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_driver_ioctls_total",
            "ioctl requests served by the wavelet driver model",
        );
        telemetry.metrics().describe(
            "wavefuse_driver_copy_words_total",
            "Words memcpy'd between user space and the DMA areas",
        );
        self.telemetry = Some(telemetry);
    }

    /// Serves an `ioctl` request.
    ///
    /// # Errors
    ///
    /// Returns [`ZynqError::InvalidIoctl`] for offsets beyond the DMA area.
    pub fn ioctl(&mut self, req: IoctlRequest) -> Result<(), ZynqError> {
        self.stats.ioctls += 1;
        if let Some(tel) = &self.telemetry {
            let request = match req {
                IoctlRequest::SetReadOffset(_) => "set_read_offset",
                IoctlRequest::SetWriteOffset(_) => "set_write_offset",
                IoctlRequest::SwapBuffers => "swap_buffers",
            };
            tel.metrics()
                .counter_add("wavefuse_driver_ioctls_total", &[("request", request)], 1.0);
        }
        let words = self.cfg.bram_words_per_buffer;
        match req {
            IoctlRequest::SetReadOffset(o) => {
                if o >= words {
                    return Err(ZynqError::InvalidIoctl(format!(
                        "read offset {o} beyond {words}-word area"
                    )));
                }
                self.read_offset = o;
            }
            IoctlRequest::SetWriteOffset(o) => {
                if o >= words {
                    return Err(ZynqError::InvalidIoctl(format!(
                        "write offset {o} beyond {words}-word area"
                    )));
                }
                self.write_offset = o;
            }
            IoctlRequest::SwapBuffers => {
                self.active ^= 1;
                self.stats.buffer_swaps += 1;
            }
        }
        Ok(())
    }

    /// User-space `memcpy` into the active input area at the current read
    /// offset, returning the PS cycles the copy cost.
    ///
    /// # Errors
    ///
    /// Returns [`ZynqError::MappingOutOfRange`] if the data exceeds the
    /// mapped window.
    pub fn copy_from_user(&mut self, data: &[f32]) -> Result<u64, ZynqError> {
        let area = &mut self.in_areas[self.active];
        let end = self.read_offset + data.len();
        if end > area.len() {
            return Err(ZynqError::MappingOutOfRange {
                offset: self.read_offset,
                len: data.len(),
                mapped: area.len(),
            });
        }
        area[self.read_offset..end].copy_from_slice(data);
        self.stats.words_from_user += data.len() as u64;
        if let Some(tel) = &self.telemetry {
            tel.metrics().counter_add(
                "wavefuse_driver_copy_words_total",
                &[("direction", "from_user")],
                data.len() as f64,
            );
        }
        Ok((data.len() as f64 * self.cfg.user_memcpy_ps_cycles_per_word).ceil() as u64)
    }

    /// The accelerator-visible view of the active input area (`len` words at
    /// the read offset) — what the engine's hardware `memcpy` fetches.
    ///
    /// # Errors
    ///
    /// Returns [`ZynqError::MappingOutOfRange`] if the window exceeds the
    /// area.
    pub fn accelerator_input(&self, len: usize) -> Result<&[f32], ZynqError> {
        let area = &self.in_areas[self.active];
        let end = self.read_offset + len;
        if end > area.len() {
            return Err(ZynqError::MappingOutOfRange {
                offset: self.read_offset,
                len,
                mapped: area.len(),
            });
        }
        Ok(&area[self.read_offset..end])
    }

    /// The accelerator writes `data` to the active output area at the write
    /// offset.
    ///
    /// # Errors
    ///
    /// Returns [`ZynqError::MappingOutOfRange`] on overflow.
    pub fn accelerator_write(&mut self, data: &[f32]) -> Result<(), ZynqError> {
        let area = &mut self.out_areas[self.active];
        let end = self.write_offset + data.len();
        if end > area.len() {
            return Err(ZynqError::MappingOutOfRange {
                offset: self.write_offset,
                len: data.len(),
                mapped: area.len(),
            });
        }
        area[self.write_offset..end].copy_from_slice(data);
        Ok(())
    }

    /// User-space `memcpy` out of the active output area into `dst`,
    /// returning PS cycles.
    ///
    /// # Errors
    ///
    /// Returns [`ZynqError::MappingOutOfRange`] if the window exceeds the
    /// area.
    pub fn copy_to_user(&mut self, dst: &mut [f32]) -> Result<u64, ZynqError> {
        let area = &self.out_areas[self.active];
        let end = self.write_offset + dst.len();
        if end > area.len() {
            return Err(ZynqError::MappingOutOfRange {
                offset: self.write_offset,
                len: dst.len(),
                mapped: area.len(),
            });
        }
        dst.copy_from_slice(&area[self.write_offset..end]);
        self.stats.words_to_user += dst.len() as u64;
        if let Some(tel) = &self.telemetry {
            tel.metrics().counter_add(
                "wavefuse_driver_copy_words_total",
                &[("direction", "to_user")],
                dst.len() as f64,
            );
        }
        Ok((dst.len() as f64 * self.cfg.user_memcpy_ps_cycles_per_word).ceil() as u64)
    }

    /// Usage counters.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Index of the active ping-pong half (0 or 1).
    pub fn active_buffer(&self) -> usize {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_driver() {
        let mut drv = WaveletDriver::open(ZynqConfig::default());
        drv.copy_from_user(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(drv.accelerator_input(4).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        drv.accelerator_write(&[9.0, 8.0]).unwrap();
        let mut out = [0.0f32; 2];
        drv.copy_to_user(&mut out).unwrap();
        assert_eq!(out, [9.0, 8.0]);
        let s = drv.stats();
        assert_eq!(s.words_from_user, 4);
        assert_eq!(s.words_to_user, 2);
    }

    #[test]
    fn offsets_are_respected() {
        let mut drv = WaveletDriver::open(ZynqConfig::default());
        drv.ioctl(IoctlRequest::SetReadOffset(100)).unwrap();
        drv.copy_from_user(&[7.0]).unwrap();
        assert_eq!(drv.accelerator_input(1).unwrap(), &[7.0]);
        drv.ioctl(IoctlRequest::SetReadOffset(0)).unwrap();
        assert_eq!(drv.accelerator_input(1).unwrap(), &[0.0]);
    }

    #[test]
    fn ping_pong_isolates_buffers() {
        let mut drv = WaveletDriver::open(ZynqConfig::default());
        drv.copy_from_user(&[5.0]).unwrap();
        drv.ioctl(IoctlRequest::SwapBuffers).unwrap();
        assert_eq!(drv.active_buffer(), 1);
        assert_eq!(drv.accelerator_input(1).unwrap(), &[0.0]);
        drv.ioctl(IoctlRequest::SwapBuffers).unwrap();
        assert_eq!(drv.accelerator_input(1).unwrap(), &[5.0]);
        assert_eq!(drv.stats().buffer_swaps, 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let cfg = ZynqConfig::default();
        let words = cfg.bram_words_per_buffer;
        let mut drv = WaveletDriver::open(cfg);
        assert!(drv.ioctl(IoctlRequest::SetReadOffset(words)).is_err());
        drv.ioctl(IoctlRequest::SetReadOffset(words - 1)).unwrap();
        assert!(drv.copy_from_user(&[1.0, 2.0]).is_err());
        assert!(drv.accelerator_input(2).is_err());
        let mut big = vec![0.0f32; words + 1];
        drv.ioctl(IoctlRequest::SetWriteOffset(0)).unwrap();
        assert!(drv.copy_to_user(&mut big).is_err());
        assert!(drv.accelerator_write(&big).is_err());
    }

    #[test]
    fn copy_cycles_scale_with_words() {
        let cfg = ZynqConfig::default();
        let mut drv = WaveletDriver::open(cfg.clone());
        let c1 = drv.copy_from_user(&[0.0; 100]).unwrap();
        let c2 = drv.copy_from_user(&[0.0; 200]).unwrap();
        assert_eq!(c2, 2 * c1);
        assert_eq!(
            c1,
            (100.0 * cfg.user_memcpy_ps_cycles_per_word).ceil() as u64
        );
    }
}

//! Simulated ZYNQ-7000 platform: the FPGA half of the fusion system.
//!
//! The paper maps the forward and inverse DT-CWT onto the ZYNQ's
//! programmable logic (PL) as a VIVADO_HLS-generated wavelet engine, fed
//! through the Accelerator Coherency Port (ACP) by a custom DMA and driven
//! from Linux through a kernel-level driver with a double-buffered ioctl
//! interface (paper Figs. 4–5, Table I). Real ZC702 silicon is not available
//! to this reproduction, so this crate provides a **cycle-level simulator**
//! of that subsystem:
//!
//! * [`config::ZynqConfig`] — clock frequencies (533 MHz PS / 100 MHz PL)
//!   and the calibrated bus/driver latency constants.
//! * [`bus`] — AXI4-Lite register port and ACP burst-DMA timing models.
//! * [`engine::WaveletEngine`] — the HLS core of Fig. 4: a fixed-size dual
//!   shift-register datapath computing one lowpass and one highpass MAC per
//!   clock at initiation interval 1, with BRAM line buffers and three
//!   command modes (coefficient load / forward / inverse). The datapath
//!   *functionally computes* the transform — its outputs are verified
//!   against the scalar software reference.
//! * [`driver::WaveletDriver`] — the kernel-driver model: kmalloc'd DMA
//!   areas, `mmap`-style user mappings, `ioctl` offset control, ping-pong
//!   double buffering.
//! * [`kernel::FpgaKernel`] — a [`wavefuse_dtcwt::FilterKernel`] backend
//!   routing every row through driver + engine while accumulating a
//!   [`ledger::CycleLedger`] of PS and PL cycles.
//! * [`resources`] — an analytic HLS resource estimator reproducing
//!   Table I's utilization on the xc7z020.
//!
//! # Examples
//!
//! ```
//! use wavefuse_dtcwt::{Dtcwt, Image};
//! use wavefuse_zynq::FpgaKernel;
//!
//! let img = Image::from_fn(32, 24, |x, y| (x + y) as f32);
//! let t = Dtcwt::new(2)?;
//! let mut fpga = FpgaKernel::new();
//! let pyr = t.forward_with(&mut fpga, &img)?;
//! let back = t.inverse_with(&mut fpga, &pyr)?;
//! assert!(back.max_abs_diff(&img) < 1e-3);
//! // The ledger has accounted every bus word and pipeline cycle.
//! assert!(fpga.ledger().pl_cycles > 0);
//! assert!(fpga.ledger().elapsed_seconds > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod config;
pub mod driver;
pub mod engine;
pub mod kernel;
pub mod ledger;
pub mod resources;
pub mod timeline;

mod error;

pub use config::ZynqConfig;
pub use error::ZynqError;
pub use kernel::{DmaTimeline, FpgaKernel};
pub use ledger::CycleLedger;

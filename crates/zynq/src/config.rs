//! Platform configuration: clocks and calibrated latency constants.

/// Timing and sizing parameters of the simulated ZYNQ platform.
///
/// Structural constants (clock rates, BRAM size, register depth) are taken
/// directly from the paper; latency constants are *calibrated* so the
/// emergent end-to-end behavior reproduces the paper's measured ratios —
/// each field's documentation names the paper observation it was fitted to.
/// The `paper_shape` integration test in the workspace root asserts those
/// ratios hold.
///
/// # Examples
///
/// ```
/// use wavefuse_zynq::ZynqConfig;
///
/// let cfg = ZynqConfig::default();
/// assert_eq!(cfg.ps_clk_hz, 533_000_000.0);
/// assert_eq!(cfg.pl_clk_hz, 100_000_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ZynqConfig {
    /// Processing-system (ARM Cortex-A9) clock. The paper runs the PS at
    /// its default 533 MHz.
    pub ps_clk_hz: f64,
    /// Programmable-logic clock. The paper's engine closes timing at
    /// 100 MHz.
    pub pl_clk_hz: f64,
    /// Depth of the engine's coefficient shift registers (hardware MAC
    /// array width). The paper's engine uses 12 taps; ours is sized to 20 to
    /// also host the 19-tap near-sym dual while keeping the same
    /// architecture.
    pub max_taps: usize,
    /// Words per BRAM ping-pong buffer (the paper: 4096 words split into two
    /// 2048-word areas, "suitable for an image width up to 2048 pixels").
    pub bram_words_per_buffer: usize,
    /// PS cycles consumed per `ioctl`/command round-trip into the kernel
    /// driver for a *forward* transform call (~15 µs, syscall scale).
    /// Calibrated so that (a) the forward FPGA enhancement at 88x72 is
    /// ≈ 55.6 % (Fig. 9a) and (b) the FPGA loses to NEON below the paper's
    /// 35x35–40x40 forward crossover.
    pub call_overhead_ps_cycles_forward: u64,
    /// PS cycles per driver round-trip for an *inverse* call. Higher than
    /// the forward value — the inverse request carries two channel
    /// descriptors and both subband buffers — fitted so the inverse (and
    /// hence the total) only beats NEON beyond 40x40 (Figs. 9b/9c).
    pub call_overhead_ps_cycles_inverse: u64,
    /// PS cycles per AXI4-Lite register write (command/status). The paper
    /// notes ~25 cycles per general-purpose-port transfer; register pokes
    /// are of that order.
    pub axil_write_ps_cycles: u64,
    /// PS cycles per 32-bit word of user-space `memcpy` into/out of the
    /// kernel DMA area (cache-warm copy on the A9).
    pub user_memcpy_ps_cycles_per_word: f64,
    /// PL cycles of fixed setup per ACP DMA burst (address handshake,
    /// coherency snoop).
    pub dma_setup_pl_cycles: u64,
    /// PL cycles per 32-bit word streamed over the ACP after setup.
    pub dma_pl_cycles_per_word: f64,
    /// Extra PL cycles to fill/flush the MAC pipeline per row (the Fig. 4
    /// loop warms up over the shift-register depth).
    pub pipeline_flush_pl_cycles: u64,
}

impl ZynqConfig {
    /// The calibrated default platform (see field docs).
    pub fn new() -> Self {
        ZynqConfig {
            ps_clk_hz: 533_000_000.0,
            pl_clk_hz: 100_000_000.0,
            max_taps: 20,
            bram_words_per_buffer: 2048,
            call_overhead_ps_cycles_forward: 7_960,
            call_overhead_ps_cycles_inverse: 12_050,
            axil_write_ps_cycles: 25,
            user_memcpy_ps_cycles_per_word: 1.5,
            dma_setup_pl_cycles: 24,
            dma_pl_cycles_per_word: 1.0,
            pipeline_flush_pl_cycles: 20,
        }
    }

    /// Seconds per PS cycle.
    #[inline]
    pub fn ps_period(&self) -> f64 {
        1.0 / self.ps_clk_hz
    }

    /// Seconds per PL cycle.
    #[inline]
    pub fn pl_period(&self) -> f64 {
        1.0 / self.pl_clk_hz
    }
}

impl Default for ZynqConfig {
    fn default() -> Self {
        ZynqConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_structure() {
        let c = ZynqConfig::default();
        assert_eq!(c.bram_words_per_buffer, 2048);
        assert!(c.max_taps >= 19, "must host the near-sym 19-tap dual");
        assert!(c.ps_period() < c.pl_period());
    }

    #[test]
    fn call_overhead_is_tens_of_microseconds() {
        // The crossover mechanism requires a syscall-scale per-call cost.
        let c = ZynqConfig::default();
        let us = c.call_overhead_ps_cycles_forward as f64 * c.ps_period() * 1e6;
        assert!((5.0..60.0).contains(&us), "forward call overhead {us} µs");
        assert!(
            c.call_overhead_ps_cycles_inverse > c.call_overhead_ps_cycles_forward,
            "inverse carries two channel buffers per request"
        );
    }
}

//! AXI interconnect timing and register models.
//!
//! Two ports connect the PS and PL, exactly as in the paper's §V:
//!
//! * an **AXI4-Lite slave** used to load filter coefficients and send
//!   commands to the engine ([`AxiLiteRegisterFile`]) — each access costs
//!   PS cycles because the CPU moves the data itself;
//! * an **AXI master over the ACP** used by the engine's hardware `memcpy`
//!   for pixel and coefficient data ([`acp_burst_pl_cycles`]) — the burst is
//!   clocked in the PL domain and stays cache-coherent with the CPU.

use crate::config::ZynqConfig;

/// Register addresses of the wavelet engine's AXI4-Lite map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum EngineReg {
    /// Command/mode register: 1 = load coefficients, 2 = forward, 3 = inverse.
    Mode = 0x00,
    /// Row width (samples) of the pending transform.
    Width = 0x04,
    /// Decimation phase (0 or 1).
    PhaseSel = 0x08,
    /// Input-buffer byte offset within the kernel DMA area.
    InOffset = 0x0c,
    /// Output-buffer byte offset within the kernel DMA area.
    OutOffset = 0x10,
    /// Start/busy handshake.
    Control = 0x14,
    /// Completion/status flags (read-only to the PS).
    Status = 0x18,
}

/// Engine command modes, mirroring the paper's three control settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineMode {
    /// Mode 1: filter-coefficient loading.
    LoadCoefficients,
    /// Mode 2: forward transform.
    Forward,
    /// Mode 3: inverse transform.
    Inverse,
}

impl EngineMode {
    /// Encoded register value.
    pub fn encode(self) -> u32 {
        match self {
            EngineMode::LoadCoefficients => 1,
            EngineMode::Forward => 2,
            EngineMode::Inverse => 3,
        }
    }
}

/// The engine's AXI4-Lite register file, with PS-cycle accounting.
///
/// # Examples
///
/// ```
/// use wavefuse_zynq::bus::{AxiLiteRegisterFile, EngineReg};
/// use wavefuse_zynq::ZynqConfig;
///
/// let mut regs = AxiLiteRegisterFile::new();
/// let cfg = ZynqConfig::default();
/// let cycles = regs.write(EngineReg::Width, 88, &cfg);
/// assert_eq!(cycles, cfg.axil_write_ps_cycles);
/// assert_eq!(regs.read(EngineReg::Width), 88);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AxiLiteRegisterFile {
    mode: u32,
    width: u32,
    phase: u32,
    in_offset: u32,
    out_offset: u32,
    control: u32,
    status: u32,
    writes: u64,
}

impl AxiLiteRegisterFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        AxiLiteRegisterFile::default()
    }

    /// Writes a register, returning the PS cycles the access cost.
    pub fn write(&mut self, reg: EngineReg, value: u32, cfg: &ZynqConfig) -> u64 {
        *self.slot(reg) = value;
        self.writes += 1;
        cfg.axil_write_ps_cycles
    }

    /// Reads a register (status polls are free in the model — the paper
    /// overlaps them with the double-buffer copy).
    pub fn read(&self, reg: EngineReg) -> u32 {
        match reg {
            EngineReg::Mode => self.mode,
            EngineReg::Width => self.width,
            EngineReg::PhaseSel => self.phase,
            EngineReg::InOffset => self.in_offset,
            EngineReg::OutOffset => self.out_offset,
            EngineReg::Control => self.control,
            EngineReg::Status => self.status,
        }
    }

    /// Number of register writes performed (for tests/reports).
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Hardware-side register update (status flags set by the engine
    /// itself) — free of PS cycles and not counted as a PS write.
    pub fn hw_set(&mut self, reg: EngineReg, value: u32) {
        *self.slot(reg) = value;
    }

    fn slot(&mut self, reg: EngineReg) -> &mut u32 {
        match reg {
            EngineReg::Mode => &mut self.mode,
            EngineReg::Width => &mut self.width,
            EngineReg::PhaseSel => &mut self.phase,
            EngineReg::InOffset => &mut self.in_offset,
            EngineReg::OutOffset => &mut self.out_offset,
            EngineReg::Control => &mut self.control,
            EngineReg::Status => &mut self.status,
        }
    }
}

/// PL cycles of one ACP burst moving `words` 32-bit words.
///
/// The paper replaced the CPU-driven general-purpose port (≈25 cycles per
/// word) with this hardware `memcpy`, which streams ≈1 word per PL clock
/// after a fixed coherency-snoop setup.
pub fn acp_burst_pl_cycles(words: usize, cfg: &ZynqConfig) -> u64 {
    if words == 0 {
        return 0;
    }
    cfg.dma_setup_pl_cycles + (words as f64 * cfg.dma_pl_cycles_per_word).ceil() as u64
}

/// PS cycles the *general-purpose port* would need for the same transfer —
/// kept for the ablation bench contrasting the paper's rejected design
/// ("every transfer requires around 25 clock cycles with the CPU moving the
/// data itself").
pub fn gp_port_ps_cycles(words: usize) -> u64 {
    25 * words as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_write_read_round_trip() {
        let cfg = ZynqConfig::default();
        let mut regs = AxiLiteRegisterFile::new();
        for (reg, v) in [
            (EngineReg::Mode, EngineMode::Forward.encode()),
            (EngineReg::Width, 88),
            (EngineReg::PhaseSel, 1),
            (EngineReg::InOffset, 0),
            (EngineReg::OutOffset, 2048),
            (EngineReg::Control, 1),
        ] {
            regs.write(reg, v, &cfg);
        }
        assert_eq!(regs.read(EngineReg::Mode), 2);
        assert_eq!(regs.read(EngineReg::Width), 88);
        assert_eq!(regs.read(EngineReg::OutOffset), 2048);
        assert_eq!(regs.write_count(), 6);
    }

    #[test]
    fn acp_beats_gp_port_for_long_bursts() {
        let cfg = ZynqConfig::default();
        // A 100-word row: ACP ~124 PL cycles vs GP ~2500 PS cycles. Even
        // accounting for the slower PL clock the ACP wins comfortably.
        let acp_s = acp_burst_pl_cycles(100, &cfg) as f64 * cfg.pl_period();
        let gp_s = gp_port_ps_cycles(100) as f64 * cfg.ps_period();
        assert!(acp_s < gp_s);
    }

    #[test]
    fn empty_burst_is_free() {
        assert_eq!(acp_burst_pl_cycles(0, &ZynqConfig::default()), 0);
    }

    #[test]
    fn mode_encoding_matches_paper() {
        assert_eq!(EngineMode::LoadCoefficients.encode(), 1);
        assert_eq!(EngineMode::Forward.encode(), 2);
        assert_eq!(EngineMode::Inverse.encode(), 3);
    }
}

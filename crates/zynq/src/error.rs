use std::error::Error;
use std::fmt;

/// Error type for the simulated ZYNQ platform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ZynqError {
    /// A transfer would overrun a BRAM or kernel DMA buffer.
    BufferOverrun {
        /// What was being written (e.g. `"input bram"`).
        what: &'static str,
        /// Words requested.
        requested: usize,
        /// Words available.
        capacity: usize,
    },
    /// The engine was commanded before filter coefficients were loaded.
    CoefficientsNotLoaded,
    /// A filter exceeds the engine's fixed coefficient-register depth.
    FilterTooLong {
        /// Taps requested.
        taps: usize,
        /// Hardware register depth.
        max_taps: usize,
    },
    /// An `ioctl`-style driver request was malformed.
    InvalidIoctl(String),
    /// An access through a user mapping fell outside the mapped window.
    MappingOutOfRange {
        /// Offset accessed (words).
        offset: usize,
        /// Words accessed.
        len: usize,
        /// Mapped window size (words).
        mapped: usize,
    },
}

impl fmt::Display for ZynqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZynqError::BufferOverrun {
                what,
                requested,
                capacity,
            } => write!(
                f,
                "{what} overrun: {requested} words requested, capacity {capacity}"
            ),
            ZynqError::CoefficientsNotLoaded => {
                write!(f, "wavelet engine commanded before coefficient load")
            }
            ZynqError::FilterTooLong { taps, max_taps } => write!(
                f,
                "filter of {taps} taps exceeds engine register depth {max_taps}"
            ),
            ZynqError::InvalidIoctl(why) => write!(f, "invalid ioctl request: {why}"),
            ZynqError::MappingOutOfRange {
                offset,
                len,
                mapped,
            } => write!(
                f,
                "mapped access of {len} words at offset {offset} exceeds window of {mapped} words"
            ),
        }
    }
}

impl Error for ZynqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_and_displays() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ZynqError>();
        assert!(ZynqError::CoefficientsNotLoaded
            .to_string()
            .contains("engine"));
    }
}

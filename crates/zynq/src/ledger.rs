//! Cycle accounting for the simulated platform.

use crate::config::ZynqConfig;

/// Accumulated cost of work routed through the FPGA path.
///
/// PS (ARM) cycles and PL (FPGA) cycles are tracked separately because they
/// run in different clock domains *and* different power domains — the power
/// model needs both. `elapsed_seconds` is accumulated at row granularity
/// with the double-buffering overlap of the paper's Fig. 5 applied (user
/// memcpy of one row overlaps engine processing of the previous).
///
/// # Examples
///
/// ```
/// use wavefuse_zynq::{CycleLedger, ZynqConfig};
///
/// let mut a = CycleLedger::default();
/// a.pl_cycles = 1_000_000;
/// assert!((a.pl_busy_seconds(&ZynqConfig::default()) - 0.01).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CycleLedger {
    /// Engine invocations (one per row transform).
    pub engine_calls: u64,
    /// Coefficient reload operations.
    pub coeff_loads: u64,
    /// PS cycles spent in driver/command overhead (ioctl, AXI-Lite pokes).
    pub ps_overhead_cycles: u64,
    /// PS cycles spent in user-space `memcpy` to/from the kernel DMA area.
    pub ps_copy_cycles: u64,
    /// PL cycles: DMA beats, pipeline fill and MAC iterations.
    pub pl_cycles: u64,
    /// Total 32-bit words moved over the ACP.
    pub dma_words: u64,
    /// Wall-clock seconds, with copy/engine overlap applied.
    pub elapsed_seconds: f64,
}

impl CycleLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        CycleLedger::default()
    }

    /// Adds another ledger's counts into this one.
    pub fn merge(&mut self, other: &CycleLedger) {
        self.engine_calls += other.engine_calls;
        self.coeff_loads += other.coeff_loads;
        self.ps_overhead_cycles += other.ps_overhead_cycles;
        self.ps_copy_cycles += other.ps_copy_cycles;
        self.pl_cycles += other.pl_cycles;
        self.dma_words += other.dma_words;
        self.elapsed_seconds += other.elapsed_seconds;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = CycleLedger::default();
    }

    /// Seconds the PS spent busy on this work.
    pub fn ps_busy_seconds(&self, cfg: &ZynqConfig) -> f64 {
        (self.ps_overhead_cycles + self.ps_copy_cycles) as f64 * cfg.ps_period()
    }

    /// Seconds the PL engine spent busy.
    pub fn pl_busy_seconds(&self, cfg: &ZynqConfig) -> f64 {
        self.pl_cycles as f64 * cfg.pl_period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_all_fields() {
        let mut a = CycleLedger {
            engine_calls: 1,
            coeff_loads: 2,
            ps_overhead_cycles: 3,
            ps_copy_cycles: 4,
            pl_cycles: 5,
            dma_words: 6,
            elapsed_seconds: 0.5,
        };
        a.merge(&a.clone());
        assert_eq!(a.engine_calls, 2);
        assert_eq!(a.pl_cycles, 10);
        assert_eq!(a.dma_words, 12);
        assert!((a.elapsed_seconds - 1.0).abs() < 1e-12);
        a.reset();
        assert_eq!(a, CycleLedger::default());
    }

    #[test]
    fn busy_seconds_use_right_clock() {
        let cfg = ZynqConfig::default();
        let l = CycleLedger {
            ps_overhead_cycles: 533,
            ps_copy_cycles: 0,
            pl_cycles: 100,
            ..CycleLedger::default()
        };
        assert!((l.ps_busy_seconds(&cfg) - 1e-6).abs() < 1e-12);
        assert!((l.pl_busy_seconds(&cfg) - 1e-6).abs() < 1e-12);
    }
}

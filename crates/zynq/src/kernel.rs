//! [`FpgaKernel`]: the FPGA compute backend.
//!
//! Implements [`wavefuse_dtcwt::FilterKernel`] by routing every row through
//! the driver + engine pair, with the paper's execution structure:
//!
//! 1. per-row `ioctl`/command round-trip into the kernel driver (the
//!    dominant fixed cost that makes small frames lose to NEON);
//! 2. user-space `memcpy` of the row into the active ping-pong area;
//! 3. hardware `memcpy` over the ACP into BRAM, the II=1 MAC pipeline, and
//!    the result burst back — all clocked at 100 MHz;
//! 4. user-space `memcpy` of the results out.
//!
//! Per Fig. 5, step 2 of row *n+1* overlaps steps 3 of row *n*; the ledger's
//! elapsed time therefore charges `max(copy, engine)` per row plus the fixed
//! overheads.

use std::sync::Arc;

use crate::bus::{EngineMode, EngineReg};
use crate::config::ZynqConfig;
use crate::driver::{IoctlRequest, WaveletDriver};
use crate::engine::WaveletEngine;
use crate::ledger::CycleLedger;
use crate::ZynqError;
use wavefuse_dtcwt::FilterKernel;
use wavefuse_trace::Telemetry;

/// The FPGA-backed filter kernel with cycle accounting.
///
/// See the crate-level example for end-to-end use. Construction is cheap;
/// reuse one instance across a whole transform so coefficient loads are
/// cached the way the real engine's registers are.
#[derive(Debug, Clone)]
pub struct FpgaKernel {
    cfg: ZynqConfig,
    engine: WaveletEngine,
    driver: WaveletDriver,
    ledger: CycleLedger,
    telemetry: Option<Arc<Telemetry>>,
}

impl Default for FpgaKernel {
    fn default() -> Self {
        FpgaKernel::new()
    }
}

impl FpgaKernel {
    /// Creates a kernel on the default calibrated platform.
    pub fn new() -> Self {
        FpgaKernel::with_config(ZynqConfig::default())
    }

    /// Creates a kernel on a custom platform configuration.
    pub fn with_config(cfg: ZynqConfig) -> Self {
        FpgaKernel {
            engine: WaveletEngine::new(cfg.clone()),
            driver: WaveletDriver::open(cfg.clone()),
            ledger: CycleLedger::new(),
            cfg,
            telemetry: None,
        }
    }

    /// Attaches a telemetry handle (propagated to the driver model):
    /// engine calls, DMA word volume and PS/PL cycles feed counters; with
    /// [`Telemetry::set_detailed`] on, every row pass also emits a
    /// `fpga_row` event on the modeled timeline.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_fpga_engine_calls_total",
            "Row passes executed by the PL wavelet engine",
        );
        telemetry.metrics().describe(
            "wavefuse_fpga_dma_words_total",
            "Words moved over the ACP by the engine's hardware memcpy",
        );
        telemetry.metrics().describe(
            "wavefuse_fpga_pl_cycles_total",
            "PL cycles spent in ACP bursts and the MAC pipeline",
        );
        telemetry.metrics().describe(
            "wavefuse_fpga_ps_cycles_total",
            "PS cycles spent in driver overhead and user copies",
        );
        telemetry.metrics().describe(
            "wavefuse_fpga_coeff_loads_total",
            "Filter-coefficient bank loads into the engine",
        );
        self.driver.set_telemetry(Arc::clone(&telemetry));
        self.telemetry = Some(telemetry);
    }

    /// The platform configuration.
    pub fn config(&self) -> &ZynqConfig {
        &self.cfg
    }

    /// Accumulated cycle/time accounting.
    pub fn ledger(&self) -> &CycleLedger {
        &self.ledger
    }

    /// Resets the accounting to zero (e.g. between benchmark phases).
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }

    /// The underlying engine (for inspection).
    pub fn engine(&self) -> &WaveletEngine {
        &self.engine
    }

    /// The underlying driver (for inspection).
    pub fn driver(&self) -> &WaveletDriver {
        &self.driver
    }

    fn charge_row(&mut self, overhead_ps: u64, copy_ps: u64, pl: u64) {
        self.ledger.engine_calls += 1;
        self.ledger.ps_overhead_cycles += overhead_ps;
        self.ledger.ps_copy_cycles += copy_ps;
        self.ledger.pl_cycles += pl;
        // Fig. 5 overlap: the user copy of the next row hides behind the
        // engine run of this one, so the critical path per row is the
        // slower of the two, plus the serial driver overhead.
        let copy_s = copy_ps as f64 * self.cfg.ps_period();
        let engine_s = pl as f64 * self.cfg.pl_period();
        let row_s = overhead_ps as f64 * self.cfg.ps_period() + copy_s.max(engine_s);
        self.ledger.elapsed_seconds += row_s;
        if let Some(tel) = &self.telemetry {
            let m = tel.metrics();
            m.counter_add("wavefuse_fpga_engine_calls_total", &[], 1.0);
            m.counter_add("wavefuse_fpga_pl_cycles_total", &[], pl as f64);
            m.counter_add(
                "wavefuse_fpga_ps_cycles_total",
                &[],
                (overhead_ps + copy_ps) as f64,
            );
            if tel.detailed() {
                // Rows tile the current transform: the tracer's model clock
                // still points at the transform's start (the engine advances
                // it only once per fused frame), so ledger elapsed-so-far is
                // the row's offset within it.
                let start = tel.tracer().model_now() + self.ledger.elapsed_seconds - row_s;
                tel.tracer().complete_span(
                    "fpga_row",
                    "zynq",
                    start,
                    row_s,
                    vec![
                        ("pl_cycles".into(), pl.into()),
                        ("copy_ps_cycles".into(), copy_ps.into()),
                        ("overhead_ps_cycles".into(), overhead_ps.into()),
                    ],
                );
            }
        }
    }

    fn command_sequence(&mut self, mode: EngineMode, width: usize, phase: usize) -> u64 {
        // The handful of AXI4-Lite pokes that arm one transform.
        let regs = self.engine.registers_mut();
        let mut ps = 0;
        ps += regs.write(EngineReg::Mode, mode.encode(), &self.cfg);
        ps += regs.write(EngineReg::Width, width as u32, &self.cfg);
        ps += regs.write(EngineReg::PhaseSel, phase as u32, &self.cfg);
        ps += regs.write(EngineReg::InOffset, 0, &self.cfg);
        ps += regs.write(EngineReg::OutOffset, 0, &self.cfg);
        ps += regs.write(EngineReg::Control, 1, &self.cfg);
        ps
    }

    #[allow(clippy::too_many_arguments)]
    fn run_forward(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) -> Result<(), ZynqError> {
        if !self.engine.analysis_filters_match(h0, h1) {
            let ps = self.engine.load_analysis_filters(h0, h1)?;
            self.ledger.coeff_loads += 1;
            self.ledger.ps_overhead_cycles += ps;
            self.ledger.elapsed_seconds += ps as f64 * self.cfg.ps_period();
            if let Some(tel) = &self.telemetry {
                tel.metrics()
                    .counter_add("wavefuse_fpga_coeff_loads_total", &[], 1.0);
            }
        }
        // Driver round trip + command pokes.
        let mut overhead = self.cfg.call_overhead_ps_cycles_forward;
        overhead += self.command_sequence(EngineMode::Forward, lo.len() * 2, phase);
        self.driver.ioctl(IoctlRequest::SetReadOffset(0))?;
        self.driver.ioctl(IoctlRequest::SetWriteOffset(0))?;

        // User copy in, engine run on the accelerator's view, user copy out.
        let mut copy_ps = self.driver.copy_from_user(ext)?;
        let input = self.driver.accelerator_input(ext.len())?.to_vec();
        let run = self.engine.forward_row(&input, left, phase, lo, hi)?;
        let mut interleaved = vec![0.0f32; lo.len() * 2];
        for k in 0..lo.len() {
            interleaved[2 * k] = hi[k];
            interleaved[2 * k + 1] = lo[k];
        }
        self.driver.accelerator_write(&interleaved)?;
        let mut out = vec![0.0f32; interleaved.len()];
        copy_ps += self.driver.copy_to_user(&mut out)?;
        for k in 0..lo.len() {
            hi[k] = out[2 * k];
            lo[k] = out[2 * k + 1];
        }
        self.ledger.dma_words += (run.words_in + run.words_out) as u64;
        if let Some(tel) = &self.telemetry {
            tel.metrics().counter_add(
                "wavefuse_fpga_dma_words_total",
                &[("direction", "forward")],
                (run.words_in + run.words_out) as f64,
            );
        }
        self.driver.ioctl(IoctlRequest::SwapBuffers)?;
        self.charge_row(overhead, copy_ps, run.pl_cycles);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inverse(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) -> Result<(), ZynqError> {
        if !self.engine.synthesis_filters_match(g0, g1) {
            let ps = self.engine.load_synthesis_filters(g0, g1)?;
            self.ledger.coeff_loads += 1;
            self.ledger.ps_overhead_cycles += ps;
            self.ledger.elapsed_seconds += ps as f64 * self.cfg.ps_period();
            if let Some(tel) = &self.telemetry {
                tel.metrics()
                    .counter_add("wavefuse_fpga_coeff_loads_total", &[], 1.0);
            }
        }
        let mut overhead = self.cfg.call_overhead_ps_cycles_inverse;
        overhead += self.command_sequence(EngineMode::Inverse, out.len(), phase);
        self.driver.ioctl(IoctlRequest::SetReadOffset(0))?;
        self.driver.ioctl(IoctlRequest::SetWriteOffset(0))?;

        // Both channels arrive in one driver request (interleaved), which is
        // why the inverse's per-call overhead is lower.
        let mut combined = Vec::with_capacity(lo_ext.len() + hi_ext.len());
        combined.extend_from_slice(lo_ext);
        combined.extend_from_slice(hi_ext);
        let mut copy_ps = self.driver.copy_from_user(&combined)?;
        let input = self.driver.accelerator_input(combined.len())?.to_vec();
        let (lo_view, hi_view) = input.split_at(lo_ext.len());
        let run = self
            .engine
            .inverse_row(lo_view, hi_view, left, phase, out)?;
        self.driver.accelerator_write(out)?;
        let mut user_out = vec![0.0f32; out.len()];
        copy_ps += self.driver.copy_to_user(&mut user_out)?;
        out.copy_from_slice(&user_out);
        self.ledger.dma_words += (run.words_in + run.words_out) as u64;
        if let Some(tel) = &self.telemetry {
            tel.metrics().counter_add(
                "wavefuse_fpga_dma_words_total",
                &[("direction", "inverse")],
                (run.words_in + run.words_out) as f64,
            );
        }
        self.driver.ioctl(IoctlRequest::SwapBuffers)?;
        self.charge_row(overhead, copy_ps, run.pl_cycles);
        Ok(())
    }
}

impl FilterKernel for FpgaKernel {
    fn name(&self) -> &'static str {
        "zynq-fpga"
    }

    /// # Panics
    ///
    /// Panics if a row exceeds the engine's 2048-word BRAM area — the same
    /// hard limit as the paper's hardware ("suitable for an image width up
    /// to 2048 pixels").
    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) {
        self.run_forward(ext, left, h0, h1, phase, lo, hi)
            .expect("row transform within hardware limits");
    }

    /// # Panics
    ///
    /// Panics if the channels exceed the engine's BRAM area.
    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) {
        self.run_inverse(lo_ext, hi_ext, left, g0, g1, phase, out)
            .expect("row transform within hardware limits");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::{Dtcwt, Dwt2d, FilterBank, Image, ScalarKernel};

    fn test_image(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| ((x * 7 + y * 3) % 19) as f32 * 0.7 - 5.0)
    }

    #[test]
    fn dwt_round_trip_through_fpga() {
        let img = test_image(40, 40);
        let dwt = Dwt2d::new(FilterBank::cdf_9_7().unwrap(), 3).unwrap();
        let mut fpga = FpgaKernel::new();
        let pyr = dwt.forward_with(&mut fpga, &img).unwrap();
        let back = dwt.inverse_with(&mut fpga, &pyr).unwrap();
        assert!(back.max_abs_diff(&img) < 1e-3);
    }

    #[test]
    fn dtcwt_matches_scalar_backend() {
        let img = test_image(32, 24);
        let t = Dtcwt::new(2).unwrap();
        let p_ref = t.forward_with(&mut ScalarKernel::new(), &img).unwrap();
        let p_fpga = t.forward_with(&mut FpgaKernel::new(), &img).unwrap();
        for level in 0..2 {
            for (a, b) in p_ref.subbands(level).iter().zip(p_fpga.subbands(level)) {
                assert!(a.re.max_abs_diff(&b.re) < 1e-3);
                assert!(a.im.max_abs_diff(&b.im) < 1e-3);
            }
        }
        for (a, b) in p_ref.lowpass().iter().zip(p_fpga.lowpass()) {
            assert!(a.max_abs_diff(b) < 1e-3);
        }
    }

    #[test]
    fn ledger_accounts_every_row() {
        let img = test_image(32, 24);
        let t = Dtcwt::new(2).unwrap();
        let mut fpga = FpgaKernel::new();
        let _ = t.forward_with(&mut fpga, &img).unwrap();
        let l = *fpga.ledger();
        // 4 tree combos x (24 row-calls + 2x16 col-calls at level 1
        //                 + 12 row-calls + 2x8 col-calls at level 2)
        let expect_calls = 4 * ((24 + 32) + (12 + 16));
        assert_eq!(l.engine_calls, expect_calls);
        assert!(l.pl_cycles > 0 && l.ps_overhead_cycles > 0);
        assert!(l.elapsed_seconds > 0.0);
        // Per-call overhead dominates at this size: elapsed must exceed the
        // pure PL busy time by a wide margin.
        assert!(l.elapsed_seconds > 3.0 * l.pl_busy_seconds(fpga.config()));
        fpga.reset_ledger();
        assert_eq!(fpga.ledger().engine_calls, 0);
    }

    #[test]
    fn coefficient_loads_are_cached() {
        let img = test_image(32, 24);
        let t = Dtcwt::new(2).unwrap();
        let mut fpga = FpgaKernel::new();
        let _ = t.forward_with(&mut fpga, &img).unwrap();
        let loads = fpga.ledger().coeff_loads;
        // Far fewer reloads than engine calls: banks change only between
        // level-1/level-2 and tree A/B, not per row.
        assert!(loads >= 2, "at least near-sym + qshift loads, got {loads}");
        assert!(
            loads * 10 < fpga.ledger().engine_calls,
            "loads {loads} should be far below calls {}",
            fpga.ledger().engine_calls
        );
    }

    #[test]
    fn elapsed_time_scales_superlinearly_below_crossover() {
        // Doubling the frame edge should much less than quadruple elapsed
        // time at small sizes, because per-call overhead dominates; this is
        // the mechanism behind the paper's crossover.
        let t = Dtcwt::new(2).unwrap();
        let mut k_small = FpgaKernel::new();
        let _ = t.forward_with(&mut k_small, &test_image(16, 16)).unwrap();
        let mut k_big = FpgaKernel::new();
        let _ = t.forward_with(&mut k_big, &test_image(32, 32)).unwrap();
        let ratio = k_big.ledger().elapsed_seconds / k_small.ledger().elapsed_seconds;
        assert!(
            ratio < 3.0,
            "overhead-dominated scaling should be ~2x for 4x pixels, got {ratio}"
        );
    }
}

//! [`FpgaKernel`]: the FPGA compute backend.
//!
//! Implements [`wavefuse_dtcwt::FilterKernel`] by routing every row through
//! the driver + engine pair, with the paper's execution structure:
//!
//! 1. per-row `ioctl`/command round-trip into the kernel driver (the
//!    dominant fixed cost that makes small frames lose to NEON);
//! 2. user-space `memcpy` of the row into the active ping-pong area;
//! 3. hardware `memcpy` over the ACP into BRAM, the II=1 MAC pipeline, and
//!    the result burst back — all clocked at 100 MHz;
//! 4. user-space `memcpy` of the results out.
//!
//! Per Fig. 5, step 2 of row *n+1* overlaps steps 3 of row *n*; the ledger's
//! elapsed time therefore charges `max(copy, engine)` per row plus the fixed
//! overheads.

use std::sync::Arc;

use crate::bus::{EngineMode, EngineReg};
use crate::config::ZynqConfig;
use crate::driver::{IoctlRequest, WaveletDriver};
use crate::engine::WaveletEngine;
use crate::ledger::CycleLedger;
use crate::ZynqError;
use wavefuse_dtcwt::FilterKernel;
use wavefuse_trace::Telemetry;

/// Double-buffered DMA timeline: the opt-in asynchronous overlap model.
///
/// The serial ledger charges every row `overhead + max(copy, engine)` — the
/// PS is assumed to block on each engine run. The real ACP engine does not
/// require that: with the split submit/wait interface the PS can keep
/// issuing driver work (or, for the hybrid backend, run short rows on the
/// SIMD unit) while the PL engine owns an in-flight row, bounded only by
/// the two ping-pong DMA buffers. This struct tracks that schedule: a
/// PS timeline advancing serially through overheads, user copies and host
/// compute, and per-buffer PL completion times; elapsed time is the longer
/// of the two timelines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DmaTimeline {
    ps_s: f64,
    buf_free: [f64; 2],
    next: usize,
    pl_done: f64,
}

impl DmaTimeline {
    /// Advances the PS timeline by `s` seconds of host-side work.
    pub fn push_ps(&mut self, s: f64) {
        self.ps_s += s;
    }

    /// Accounts one row: the driver overhead and user copy run serially on
    /// the PS; the engine run is then dispatched onto whichever ping-pong
    /// buffer frees first, no earlier than the PS finished feeding it.
    pub fn push_row(&mut self, overhead_s: f64, copy_s: f64, engine_s: f64) {
        self.ps_s += overhead_s + copy_s;
        let start = self.ps_s.max(self.buf_free[self.next]);
        let done = start + engine_s;
        self.buf_free[self.next] = done;
        self.next ^= 1;
        self.pl_done = self.pl_done.max(done);
    }

    /// End of the combined timeline: when both the PS and the last PL run
    /// have retired.
    pub fn elapsed_seconds(&self) -> f64 {
        self.ps_s.max(self.pl_done)
    }

    /// Position of the PS timeline alone.
    pub fn ps_seconds(&self) -> f64 {
        self.ps_s
    }

    /// When the last dispatched PL run retires.
    pub fn pl_done_seconds(&self) -> f64 {
        self.pl_done
    }
}

/// The FPGA-backed filter kernel with cycle accounting.
///
/// See the crate-level example for end-to-end use. Construction is cheap;
/// reuse one instance across a whole transform so coefficient loads are
/// cached the way the real engine's registers are.
#[derive(Debug, Clone)]
pub struct FpgaKernel {
    cfg: ZynqConfig,
    engine: WaveletEngine,
    driver: WaveletDriver,
    ledger: CycleLedger,
    telemetry: Option<Arc<Telemetry>>,
    /// Present when the async overlap model is enabled; tracks the
    /// overlapped schedule alongside the ledger's serial accounting.
    overlap: Option<DmaTimeline>,
    /// Row staging scratch (interleaved outputs / combined channels),
    /// persistent so steady-state rows never allocate.
    row_scratch: Vec<f32>,
}

impl Default for FpgaKernel {
    fn default() -> Self {
        FpgaKernel::new()
    }
}

impl FpgaKernel {
    /// Creates a kernel on the default calibrated platform.
    pub fn new() -> Self {
        FpgaKernel::with_config(ZynqConfig::default())
    }

    /// Creates a kernel on a custom platform configuration.
    pub fn with_config(cfg: ZynqConfig) -> Self {
        FpgaKernel {
            engine: WaveletEngine::new(cfg.clone()),
            driver: WaveletDriver::open(cfg.clone()),
            ledger: CycleLedger::new(),
            cfg,
            telemetry: None,
            overlap: None,
            row_scratch: Vec::new(),
        }
    }

    /// Enables (or disables) the asynchronous double-buffered DMA overlap
    /// model. Off by default: the ledger then charges the paper's serial
    /// Fig. 5 schedule. When on, [`Self::dma_timeline`] tracks the
    /// overlapped schedule the split submit/wait interface permits; results
    /// are bit-identical either way — only time accounting differs.
    pub fn set_dma_overlap(&mut self, enabled: bool) {
        self.overlap = if enabled {
            Some(DmaTimeline::default())
        } else {
            None
        };
    }

    /// The async overlap timeline, when enabled via
    /// [`Self::set_dma_overlap`].
    pub fn dma_timeline(&self) -> Option<&DmaTimeline> {
        self.overlap.as_ref()
    }

    /// Charges `s` seconds of host-side compute onto the PS timeline of the
    /// overlap model (no-op when overlap is disabled). The hybrid kernel
    /// uses this for SIMD-routed rows that run while the PL engine is busy.
    pub fn push_host_seconds(&mut self, s: f64) {
        if let Some(tl) = &mut self.overlap {
            tl.push_ps(s);
        }
    }

    /// Attaches a telemetry handle (propagated to the driver model):
    /// engine calls, DMA word volume and PS/PL cycles feed counters; with
    /// [`Telemetry::set_detailed`] on, every row pass also emits a
    /// `fpga_row` event on the modeled timeline.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.metrics().describe(
            "wavefuse_fpga_engine_calls_total",
            "Row passes executed by the PL wavelet engine",
        );
        telemetry.metrics().describe(
            "wavefuse_fpga_dma_words_total",
            "Words moved over the ACP by the engine's hardware memcpy",
        );
        telemetry.metrics().describe(
            "wavefuse_fpga_pl_cycles_total",
            "PL cycles spent in ACP bursts and the MAC pipeline",
        );
        telemetry.metrics().describe(
            "wavefuse_fpga_ps_cycles_total",
            "PS cycles spent in driver overhead and user copies",
        );
        telemetry.metrics().describe(
            "wavefuse_fpga_coeff_loads_total",
            "Filter-coefficient bank loads into the engine",
        );
        self.driver.set_telemetry(Arc::clone(&telemetry));
        self.telemetry = Some(telemetry);
    }

    /// The platform configuration.
    pub fn config(&self) -> &ZynqConfig {
        &self.cfg
    }

    /// Accumulated cycle/time accounting.
    pub fn ledger(&self) -> &CycleLedger {
        &self.ledger
    }

    /// Resets the accounting to zero (e.g. between benchmark phases),
    /// including the overlap timeline when enabled.
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
        if let Some(tl) = &mut self.overlap {
            *tl = DmaTimeline::default();
        }
    }

    /// The underlying engine (for inspection).
    pub fn engine(&self) -> &WaveletEngine {
        &self.engine
    }

    /// The underlying driver (for inspection).
    pub fn driver(&self) -> &WaveletDriver {
        &self.driver
    }

    fn charge_row(&mut self, overhead_ps: u64, copy_ps: u64, pl: u64) {
        self.ledger.engine_calls += 1;
        self.ledger.ps_overhead_cycles += overhead_ps;
        self.ledger.ps_copy_cycles += copy_ps;
        self.ledger.pl_cycles += pl;
        // Fig. 5 overlap: the user copy of the next row hides behind the
        // engine run of this one, so the critical path per row is the
        // slower of the two, plus the serial driver overhead.
        let copy_s = copy_ps as f64 * self.cfg.ps_period();
        let engine_s = pl as f64 * self.cfg.pl_period();
        let row_s = overhead_ps as f64 * self.cfg.ps_period() + copy_s.max(engine_s);
        self.ledger.elapsed_seconds += row_s;
        if let Some(tl) = &mut self.overlap {
            tl.push_row(overhead_ps as f64 * self.cfg.ps_period(), copy_s, engine_s);
        }
        if let Some(tel) = &self.telemetry {
            let m = tel.metrics();
            m.counter_add("wavefuse_fpga_engine_calls_total", &[], 1.0);
            m.counter_add("wavefuse_fpga_pl_cycles_total", &[], pl as f64);
            m.counter_add(
                "wavefuse_fpga_ps_cycles_total",
                &[],
                (overhead_ps + copy_ps) as f64,
            );
            if tel.detailed() {
                // Rows tile the current transform: the tracer's model clock
                // still points at the transform's start (the engine advances
                // it only once per fused frame), so ledger elapsed-so-far is
                // the row's offset within it.
                let start = tel.tracer().model_now() + self.ledger.elapsed_seconds - row_s;
                tel.tracer().complete_span(
                    "fpga_row",
                    "zynq",
                    start,
                    row_s,
                    vec![
                        ("pl_cycles".into(), pl.into()),
                        ("copy_ps_cycles".into(), copy_ps.into()),
                        ("overhead_ps_cycles".into(), overhead_ps.into()),
                    ],
                );
            }
        }
    }

    fn command_sequence(&mut self, mode: EngineMode, width: usize, phase: usize) -> u64 {
        // The handful of AXI4-Lite pokes that arm one transform.
        let regs = self.engine.registers_mut();
        let mut ps = 0;
        ps += regs.write(EngineReg::Mode, mode.encode(), &self.cfg);
        ps += regs.write(EngineReg::Width, width as u32, &self.cfg);
        ps += regs.write(EngineReg::PhaseSel, phase as u32, &self.cfg);
        ps += regs.write(EngineReg::InOffset, 0, &self.cfg);
        ps += regs.write(EngineReg::OutOffset, 0, &self.cfg);
        ps += regs.write(EngineReg::Control, 1, &self.cfg);
        ps
    }

    #[allow(clippy::too_many_arguments)]
    fn run_forward(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) -> Result<(), ZynqError> {
        if !self.engine.analysis_filters_match(h0, h1) {
            let ps = self.engine.load_analysis_filters(h0, h1)?;
            self.ledger.coeff_loads += 1;
            self.ledger.ps_overhead_cycles += ps;
            self.ledger.elapsed_seconds += ps as f64 * self.cfg.ps_period();
            if let Some(tl) = &mut self.overlap {
                tl.push_ps(ps as f64 * self.cfg.ps_period());
            }
            if let Some(tel) = &self.telemetry {
                tel.metrics()
                    .counter_add("wavefuse_fpga_coeff_loads_total", &[], 1.0);
            }
        }
        // Driver round trip + command pokes.
        let mut overhead = self.cfg.call_overhead_ps_cycles_forward;
        overhead += self.command_sequence(EngineMode::Forward, lo.len() * 2, phase);
        self.driver.ioctl(IoctlRequest::SetReadOffset(0))?;
        self.driver.ioctl(IoctlRequest::SetWriteOffset(0))?;

        // User copy in, submit on the accelerator's view (borrowed in
        // place), stage results while the run is in flight, then wait and
        // copy out. Staging reuses the persistent scratch so steady-state
        // rows never allocate.
        let mut copy_ps = self.driver.copy_from_user(ext)?;
        let input = self.driver.accelerator_input(ext.len())?;
        let ticket = self.engine.submit_forward_row(input, left, phase, lo, hi)?;
        self.row_scratch.resize(lo.len() * 2, 0.0);
        for k in 0..lo.len() {
            self.row_scratch[2 * k] = hi[k];
            self.row_scratch[2 * k + 1] = lo[k];
        }
        self.driver.accelerator_write(&self.row_scratch)?;
        let run = self.engine.wait(ticket);
        copy_ps += self.driver.copy_to_user(&mut self.row_scratch)?;
        for k in 0..lo.len() {
            hi[k] = self.row_scratch[2 * k];
            lo[k] = self.row_scratch[2 * k + 1];
        }
        self.ledger.dma_words += (run.words_in + run.words_out) as u64;
        if let Some(tel) = &self.telemetry {
            tel.metrics().counter_add(
                "wavefuse_fpga_dma_words_total",
                &[("direction", "forward")],
                (run.words_in + run.words_out) as f64,
            );
        }
        self.driver.ioctl(IoctlRequest::SwapBuffers)?;
        self.charge_row(overhead, copy_ps, run.pl_cycles);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inverse(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) -> Result<(), ZynqError> {
        if !self.engine.synthesis_filters_match(g0, g1) {
            let ps = self.engine.load_synthesis_filters(g0, g1)?;
            self.ledger.coeff_loads += 1;
            self.ledger.ps_overhead_cycles += ps;
            self.ledger.elapsed_seconds += ps as f64 * self.cfg.ps_period();
            if let Some(tl) = &mut self.overlap {
                tl.push_ps(ps as f64 * self.cfg.ps_period());
            }
            if let Some(tel) = &self.telemetry {
                tel.metrics()
                    .counter_add("wavefuse_fpga_coeff_loads_total", &[], 1.0);
            }
        }
        let mut overhead = self.cfg.call_overhead_ps_cycles_inverse;
        overhead += self.command_sequence(EngineMode::Inverse, out.len(), phase);
        self.driver.ioctl(IoctlRequest::SetReadOffset(0))?;
        self.driver.ioctl(IoctlRequest::SetWriteOffset(0))?;

        // Both channels arrive in one driver request (interleaved), which is
        // why the inverse's per-call overhead is lower.
        self.row_scratch.clear();
        self.row_scratch.extend_from_slice(lo_ext);
        self.row_scratch.extend_from_slice(hi_ext);
        let mut copy_ps = self.driver.copy_from_user(&self.row_scratch)?;
        let input = self.driver.accelerator_input(lo_ext.len() + hi_ext.len())?;
        let (lo_view, hi_view) = input.split_at(lo_ext.len());
        let ticket = self
            .engine
            .submit_inverse_row(lo_view, hi_view, left, phase, out)?;
        self.driver.accelerator_write(out)?;
        let run = self.engine.wait(ticket);
        copy_ps += self.driver.copy_to_user(out)?;
        self.ledger.dma_words += (run.words_in + run.words_out) as u64;
        if let Some(tel) = &self.telemetry {
            tel.metrics().counter_add(
                "wavefuse_fpga_dma_words_total",
                &[("direction", "inverse")],
                (run.words_in + run.words_out) as f64,
            );
        }
        self.driver.ioctl(IoctlRequest::SwapBuffers)?;
        self.charge_row(overhead, copy_ps, run.pl_cycles);
        Ok(())
    }
}

impl FilterKernel for FpgaKernel {
    fn name(&self) -> &'static str {
        "zynq-fpga"
    }

    /// # Panics
    ///
    /// Panics if a row exceeds the engine's 2048-word BRAM area — the same
    /// hard limit as the paper's hardware ("suitable for an image width up
    /// to 2048 pixels").
    fn analyze_row(
        &mut self,
        ext: &[f32],
        left: usize,
        h0: &[f32],
        h1: &[f32],
        phase: usize,
        lo: &mut [f32],
        hi: &mut [f32],
    ) {
        self.run_forward(ext, left, h0, h1, phase, lo, hi)
            .expect("row transform within hardware limits");
    }

    /// # Panics
    ///
    /// Panics if the channels exceed the engine's BRAM area.
    fn synthesize_row(
        &mut self,
        lo_ext: &[f32],
        hi_ext: &[f32],
        left: usize,
        g0: &[f32],
        g1: &[f32],
        phase: usize,
        out: &mut [f32],
    ) {
        self.run_inverse(lo_ext, hi_ext, left, g0, g1, phase, out)
            .expect("row transform within hardware limits");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavefuse_dtcwt::{Dtcwt, Dwt2d, FilterBank, Image, ScalarKernel};

    fn test_image(w: usize, h: usize) -> Image {
        Image::from_fn(w, h, |x, y| ((x * 7 + y * 3) % 19) as f32 * 0.7 - 5.0)
    }

    #[test]
    fn dwt_round_trip_through_fpga() {
        let img = test_image(40, 40);
        let dwt = Dwt2d::new(FilterBank::cdf_9_7().unwrap(), 3).unwrap();
        let mut fpga = FpgaKernel::new();
        let pyr = dwt.forward_with(&mut fpga, &img).unwrap();
        let back = dwt.inverse_with(&mut fpga, &pyr).unwrap();
        assert!(back.max_abs_diff(&img) < 1e-3);
    }

    #[test]
    fn dtcwt_matches_scalar_backend() {
        let img = test_image(32, 24);
        let t = Dtcwt::new(2).unwrap();
        let p_ref = t.forward_with(&mut ScalarKernel::new(), &img).unwrap();
        let p_fpga = t.forward_with(&mut FpgaKernel::new(), &img).unwrap();
        for level in 0..2 {
            for (a, b) in p_ref.subbands(level).iter().zip(p_fpga.subbands(level)) {
                assert!(a.re.max_abs_diff(&b.re) < 1e-3);
                assert!(a.im.max_abs_diff(&b.im) < 1e-3);
            }
        }
        for (a, b) in p_ref.lowpass().iter().zip(p_fpga.lowpass()) {
            assert!(a.max_abs_diff(b) < 1e-3);
        }
    }

    #[test]
    fn ledger_accounts_every_row() {
        let img = test_image(32, 24);
        let t = Dtcwt::new(2).unwrap();
        let mut fpga = FpgaKernel::new();
        let _ = t.forward_with(&mut fpga, &img).unwrap();
        let l = *fpga.ledger();
        // 4 tree combos x (24 row-calls + 2x16 col-calls at level 1
        //                 + 12 row-calls + 2x8 col-calls at level 2)
        let expect_calls = 4 * ((24 + 32) + (12 + 16));
        assert_eq!(l.engine_calls, expect_calls);
        assert!(l.pl_cycles > 0 && l.ps_overhead_cycles > 0);
        assert!(l.elapsed_seconds > 0.0);
        // Per-call overhead dominates at this size: elapsed must exceed the
        // pure PL busy time by a wide margin.
        assert!(l.elapsed_seconds > 3.0 * l.pl_busy_seconds(fpga.config()));
        fpga.reset_ledger();
        assert_eq!(fpga.ledger().engine_calls, 0);
    }

    #[test]
    fn coefficient_loads_are_cached() {
        let img = test_image(32, 24);
        let t = Dtcwt::new(2).unwrap();
        let mut fpga = FpgaKernel::new();
        let _ = t.forward_with(&mut fpga, &img).unwrap();
        let loads = fpga.ledger().coeff_loads;
        // Far fewer reloads than engine calls: banks change only between
        // level-1/level-2 and tree A/B, not per row.
        assert!(loads >= 2, "at least near-sym + qshift loads, got {loads}");
        assert!(
            loads * 10 < fpga.ledger().engine_calls,
            "loads {loads} should be far below calls {}",
            fpga.ledger().engine_calls
        );
    }

    #[test]
    fn dma_overlap_is_faster_than_serial_and_bit_identical() {
        let img = test_image(64, 48);
        let t = Dtcwt::new(3).unwrap();
        let mut serial = FpgaKernel::new();
        let p_serial = t.forward_with(&mut serial, &img).unwrap();
        let mut overlapped = FpgaKernel::new();
        overlapped.set_dma_overlap(true);
        let p_overlap = t.forward_with(&mut overlapped, &img).unwrap();
        // Bit-identical results: only the time accounting differs.
        for level in 0..3 {
            for (a, b) in p_serial
                .subbands(level)
                .iter()
                .zip(p_overlap.subbands(level))
            {
                assert_eq!(a.re.max_abs_diff(&b.re), 0.0);
                assert_eq!(a.im.max_abs_diff(&b.im), 0.0);
            }
        }
        let tl = *overlapped.dma_timeline().unwrap();
        let serial_s = overlapped.ledger().elapsed_seconds;
        assert_eq!(serial.ledger().elapsed_seconds, serial_s);
        // The overlapped schedule can never beat the PS's serial work nor
        // the PL critical path, and must beat the fully serial charge.
        assert!(tl.elapsed_seconds() <= serial_s);
        assert!(tl.elapsed_seconds() >= tl.ps_seconds());
        assert!(tl.elapsed_seconds() >= overlapped.ledger().pl_busy_seconds(overlapped.config()));
        // Ledger counters are schedule-independent.
        assert_eq!(
            serial.ledger().engine_calls,
            overlapped.ledger().engine_calls
        );
        assert_eq!(serial.ledger().pl_cycles, overlapped.ledger().pl_cycles);
    }

    #[test]
    fn overlap_timeline_interleaves_host_work() {
        let mut tl = DmaTimeline::default();
        // Row engine time dominates the copy: PS runs ahead, PL lags.
        tl.push_row(1e-6, 1e-6, 10e-6);
        assert!((tl.ps_seconds() - 2e-6).abs() < 1e-12);
        assert!((tl.pl_done_seconds() - 12e-6).abs() < 1e-12);
        // Host work shorter than the in-flight engine run hides entirely.
        tl.push_ps(5e-6);
        assert!((tl.elapsed_seconds() - 12e-6).abs() < 1e-12);
        // A third row on the first buffer again: it must wait for the
        // earlier run on that buffer even though the PS is ready.
        tl.push_row(1e-6, 1e-6, 10e-6);
        tl.push_row(1e-6, 1e-6, 10e-6);
        assert!(tl.pl_done_seconds() >= 22e-6);
    }

    #[test]
    fn reset_clears_overlap_timeline() {
        let mut k = FpgaKernel::new();
        k.set_dma_overlap(true);
        let t = Dtcwt::new(2).unwrap();
        let _ = t.forward_with(&mut k, &test_image(16, 16)).unwrap();
        assert!(k.dma_timeline().unwrap().elapsed_seconds() > 0.0);
        k.reset_ledger();
        assert_eq!(k.dma_timeline().unwrap().elapsed_seconds(), 0.0);
    }

    #[test]
    fn elapsed_time_scales_superlinearly_below_crossover() {
        // Doubling the frame edge should much less than quadruple elapsed
        // time at small sizes, because per-call overhead dominates; this is
        // the mechanism behind the paper's crossover.
        let t = Dtcwt::new(2).unwrap();
        let mut k_small = FpgaKernel::new();
        let _ = t.forward_with(&mut k_small, &test_image(16, 16)).unwrap();
        let mut k_big = FpgaKernel::new();
        let _ = t.forward_with(&mut k_big, &test_image(32, 32)).unwrap();
        let ratio = k_big.ledger().elapsed_seconds / k_small.ledger().elapsed_seconds;
        assert!(
            ratio < 3.0,
            "overhead-dominated scaling should be ~2x for 4x pixels, got {ratio}"
        );
    }
}

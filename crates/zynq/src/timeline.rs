//! PS/PL activity timeline of the double-buffered row pipeline.
//!
//! Renders the paper's Fig. 5 as data: for a batch of rows, when the PS is
//! busy with driver overhead and user `memcpy`, when the PL engine is
//! streaming and filtering, and how the ping-pong buffering overlaps the
//! two. The `repro -- timeline` subcommand prints the ASCII Gantt.

use crate::bus::acp_burst_pl_cycles;
use crate::config::ZynqConfig;

/// Which unit an event occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// The ARM processing system.
    Ps,
    /// The programmable-logic wavelet engine.
    Pl,
}

/// One busy interval on one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Lane the event occupies.
    pub lane: Lane,
    /// Event kind (`"ioctl"`, `"memcpy"`, `"engine"`).
    pub label: &'static str,
    /// Start time, microseconds from batch start.
    pub start_us: f64,
    /// End time, microseconds.
    pub end_us: f64,
    /// Row index the event belongs to.
    pub row: usize,
}

/// Builds the steady-state schedule of `rows` forward rows of `words`
/// samples each, under the Fig. 5 double-buffering discipline: the user
/// copy of row *n* overlaps the engine run of row *n−1*.
pub fn double_buffer_timeline(rows: usize, words: usize, cfg: &ZynqConfig) -> Vec<TimelineEvent> {
    let ps_us = 1e6 / cfg.ps_clk_hz;
    let pl_us = 1e6 / cfg.pl_clk_hz;
    let overhead_us =
        (cfg.call_overhead_ps_cycles_forward + 6 * cfg.axil_write_ps_cycles) as f64 * ps_us;
    let copy_us = (2 * words) as f64 * cfg.user_memcpy_ps_cycles_per_word * ps_us;
    let engine_pl = acp_burst_pl_cycles(words, cfg)
        + cfg.pipeline_flush_pl_cycles
        + (words / 2) as u64
        + acp_burst_pl_cycles(words, cfg);
    let engine_us = engine_pl as f64 * pl_us;

    let mut events = Vec::with_capacity(rows * 3);
    let mut t = 0.0f64;
    for row in 0..rows {
        events.push(TimelineEvent {
            lane: Lane::Ps,
            label: "ioctl",
            start_us: t,
            end_us: t + overhead_us,
            row,
        });
        t += overhead_us;
        // Copy of this row's successor overlaps this row's engine run.
        events.push(TimelineEvent {
            lane: Lane::Ps,
            label: "memcpy",
            start_us: t,
            end_us: t + copy_us,
            row,
        });
        events.push(TimelineEvent {
            lane: Lane::Pl,
            label: "engine",
            start_us: t,
            end_us: t + engine_us,
            row,
        });
        t += copy_us.max(engine_us);
    }
    events
}

/// Total span of a timeline, microseconds.
pub fn span_us(events: &[TimelineEvent]) -> f64 {
    events.iter().fold(0.0, |m, e| m.max(e.end_us))
}

/// Renders the two lanes as an ASCII Gantt of `columns` characters.
pub fn render_ascii(events: &[TimelineEvent], columns: usize) -> String {
    let span = span_us(events).max(1e-9);
    let mut ps: Vec<char> = vec![' '; columns];
    let mut pl: Vec<char> = vec![' '; columns];
    for e in events {
        let c0 = ((e.start_us / span) * columns as f64).floor() as usize;
        let c1 = (((e.end_us / span) * columns as f64).ceil() as usize).min(columns);
        let (lane, glyph) = match (e.lane, e.label) {
            (Lane::Ps, "ioctl") => (&mut ps, '#'),
            (Lane::Ps, _) => (&mut ps, '='),
            (Lane::Pl, _) => (&mut pl, '@'),
        };
        for slot in lane[c0..c1.max(c0 + 1).min(columns)].iter_mut() {
            *slot = glyph;
        }
    }
    let busy = |l: &[char]| l.iter().filter(|&&c| c != ' ').count() as f64 / columns as f64;
    format!(
        "PS |{}| {:.0}% busy   (# ioctl/cmd, = user memcpy)\nPL |{}| {:.0}% busy   (@ dma + filter pipeline)\nspan: {:.1} us\n",
        ps.iter().collect::<String>(),
        busy(&ps) * 100.0,
        pl.iter().collect::<String>(),
        busy(&pl) * 100.0,
        span
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_ordered_and_nonoverlapping_per_lane() {
        let cfg = ZynqConfig::default();
        let events = double_buffer_timeline(6, 88, &cfg);
        assert_eq!(events.len(), 18);
        for lane in [Lane::Ps, Lane::Pl] {
            let mut last_end = 0.0f64;
            for e in events.iter().filter(|e| e.lane == lane) {
                assert!(e.start_us + 1e-12 >= last_end, "{lane:?} overlap at {e:?}");
                assert!(e.end_us >= e.start_us);
                last_end = e.end_us;
            }
        }
    }

    #[test]
    fn span_matches_ledger_style_accounting() {
        // The timeline's span must reproduce the per-row
        // `overhead + max(copy, engine)` elapsed model.
        let cfg = ZynqConfig::default();
        let rows = 10;
        let words = 88;
        let events = double_buffer_timeline(rows, words, &cfg);
        let ps_us = 1e6 / cfg.ps_clk_hz;
        let overhead =
            (cfg.call_overhead_ps_cycles_forward + 6 * cfg.axil_write_ps_cycles) as f64 * ps_us;
        let copy = (2 * words) as f64 * cfg.user_memcpy_ps_cycles_per_word * ps_us;
        let engine = (acp_burst_pl_cycles(words, &cfg)
            + cfg.pipeline_flush_pl_cycles
            + (words / 2) as u64
            + acp_burst_pl_cycles(words, &cfg)) as f64
            * 1e6
            / cfg.pl_clk_hz;
        let expect = rows as f64 * (overhead + copy.max(engine));
        assert!((span_us(&events) - expect).abs() < 1e-6);
    }

    #[test]
    fn ascii_render_shows_both_lanes() {
        let cfg = ZynqConfig::default();
        let events = double_buffer_timeline(4, 64, &cfg);
        let s = render_ascii(&events, 80);
        assert!(s.contains("PS |"));
        assert!(s.contains("PL |"));
        assert!(s.contains('#') && s.contains('@'));
        // The PS is the busier unit (the paper's bottleneck diagnosis).
        let ps_busy = s.lines().next().unwrap().matches(['#', '=']).count();
        let pl_busy = s.lines().nth(1).unwrap().matches('@').count();
        assert!(ps_busy > pl_busy, "PS {ps_busy} vs PL {pl_busy}");
    }

    #[test]
    fn empty_timeline_renders() {
        let s = render_ascii(&[], 20);
        assert!(s.contains("0% busy"));
    }
}

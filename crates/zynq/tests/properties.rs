//! Property-based tests for the platform simulator.

// Needs the external `proptest` crate, which the offline build cannot
// resolve: restore the dev-dependencies listed in the root Cargo.toml on
// a networked machine and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

use proptest::prelude::*;
use wavefuse_dtcwt::dwt1d::{analyze, BankTaps, Phase};
use wavefuse_dtcwt::{FilterBank, ScalarKernel};
use wavefuse_zynq::bus::acp_burst_pl_cycles;
use wavefuse_zynq::driver::{IoctlRequest, WaveletDriver};
use wavefuse_zynq::engine::WaveletEngine;
use wavefuse_zynq::ZynqConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_scalar_on_random_rows(
        half in 2usize..=48,
        seed in 0u32..1000,
        phase_b in proptest::bool::ANY,
        bank_idx in 0usize..3,
    ) {
        let bank = match bank_idx {
            0 => FilterBank::haar(),
            1 => FilterBank::near_sym_b(),
            _ => FilterBank::qshift_b(),
        }.unwrap();
        let taps = BankTaps::new(&bank);
        let x: Vec<f32> = (0..half * 2)
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                (v % 199) as f32 * 0.05 - 5.0
            })
            .collect();
        let phase = if phase_b { Phase::B } else { Phase::A };

        // Reference through the public 1-D path.
        let mut sc = ScalarKernel::new();
        let (lo_ref, hi_ref) = analyze(&mut sc, &taps, &x, phase).unwrap();

        // Engine on the identical extension.
        let left = taps.h0.len().max(taps.h1.len());
        let mut ext = Vec::new();
        wavefuse_dtcwt::dwt1d::extend_circular_into(&x, left, left, &mut ext);
        let mut eng = WaveletEngine::new(ZynqConfig::default());
        eng.load_analysis_filters(&taps.h0, &taps.h1).unwrap();
        let mut lo = vec![0.0f32; half];
        let mut hi = vec![0.0f32; half];
        eng.forward_row(&ext, left, phase.offset(), &mut lo, &mut hi)
            .unwrap();
        let scale = x.iter().fold(1.0f32, |m, v| m.max(v.abs()));
        for i in 0..half {
            prop_assert!((lo[i] - lo_ref[i]).abs() < 2e-4 * scale);
            prop_assert!((hi[i] - hi_ref[i]).abs() < 2e-4 * scale);
        }
    }

    #[test]
    fn engine_cycles_grow_monotonically_with_row_length(
        a in 4usize..=512,
        b in 4usize..=512,
    ) {
        let cfg = ZynqConfig::default();
        let mut eng = WaveletEngine::new(cfg);
        let h = std::f32::consts::FRAC_1_SQRT_2;
        eng.load_analysis_filters(&[h, h], &[h, -h]).unwrap();
        let run = |eng: &mut WaveletEngine, n: usize| {
            let ext = vec![0.5f32; n + 4];
            let mut lo = vec![0.0f32; n / 2];
            let mut hi = vec![0.0f32; n / 2];
            eng.forward_row(&ext, 2, 0, &mut lo, &mut hi).unwrap().pl_cycles
        };
        let (small, large) = (a.min(b) & !1, a.max(b) & !1);
        prop_assume!(small >= 4 && small < large);
        let cs = run(&mut eng, small);
        let cl = run(&mut eng, large);
        prop_assert!(cl > cs, "{large} words: {cl} cycles vs {small} words: {cs}");
    }

    #[test]
    fn acp_burst_cost_is_affine(words in 1usize..2000, extra in 1usize..500) {
        let cfg = ZynqConfig::default();
        let c1 = acp_burst_pl_cycles(words, &cfg);
        let c2 = acp_burst_pl_cycles(words + extra, &cfg);
        // Superadditive-free: the marginal cost of extra words is exactly
        // per-word (no hidden cliffs).
        prop_assert_eq!(c2 - c1, extra as u64);
    }

    #[test]
    fn driver_round_trips_any_payload(
        payload in proptest::collection::vec(-1e6f32..1e6, 1..=512),
        offset in 0usize..1024,
    ) {
        let mut drv = WaveletDriver::open(ZynqConfig::default());
        prop_assume!(offset + payload.len() <= 2048);
        drv.ioctl(IoctlRequest::SetReadOffset(offset)).unwrap();
        drv.copy_from_user(&payload).unwrap();
        let seen = drv.accelerator_input(payload.len()).unwrap();
        prop_assert_eq!(seen, &payload[..]);
        // Writes on the output side round-trip too.
        drv.ioctl(IoctlRequest::SetWriteOffset(offset)).unwrap();
        drv.accelerator_write(&payload).unwrap();
        let mut out = vec![0.0f32; payload.len()];
        drv.copy_to_user(&mut out).unwrap();
        prop_assert_eq!(out, payload);
    }

    #[test]
    fn driver_swaps_are_involutive(
        payload in proptest::collection::vec(-10.0f32..10.0, 1..=64),
        swaps in 0usize..8,
    ) {
        let mut drv = WaveletDriver::open(ZynqConfig::default());
        drv.copy_from_user(&payload).unwrap();
        for _ in 0..swaps {
            drv.ioctl(IoctlRequest::SwapBuffers).unwrap();
        }
        let visible = drv.accelerator_input(payload.len()).unwrap();
        if swaps % 2 == 0 {
            prop_assert_eq!(visible, &payload[..]);
        } else {
            prop_assert!(visible.iter().all(|&v| v == 0.0));
        }
    }
}

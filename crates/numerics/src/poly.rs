//! Dense univariate polynomials and root finding.
//!
//! The Daubechies filter designer in `wavefuse-dtcwt` factors the half-band
//! product filter by finding all roots of a small (degree ≤ ~30) polynomial.
//! The Durand–Kerner (Weierstrass) simultaneous iteration implemented here is
//! simple, derivative-free and robust at these degrees.

use crate::complex::Complex64;
use crate::NumericsError;

/// A dense univariate polynomial with real coefficients.
///
/// Coefficients are stored in ascending-power order:
/// `coeffs[k]` multiplies `x^k`.
///
/// # Examples
///
/// ```
/// use wavefuse_numerics::poly::Polynomial;
///
/// let p = Polynomial::new(vec![1.0, 0.0, -1.0]); // 1 - x^2
/// assert_eq!(p.eval(2.0), -3.0);
/// assert_eq!(p.degree(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coeffs: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients in ascending-power order.
    ///
    /// Trailing zero coefficients are trimmed so that `degree` reflects the
    /// true degree.
    pub fn new(mut coeffs: Vec<f64>) -> Self {
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Polynomial { coeffs }
    }

    /// Creates the monomial `c * x^k`.
    pub fn monomial(c: f64, k: usize) -> Self {
        let mut coeffs = vec![0.0; k + 1];
        coeffs[k] = c;
        Polynomial::new(coeffs)
    }

    /// Constructs the monic polynomial with the given roots:
    /// `prod_k (x - roots[k])`.
    ///
    /// Complex roots should come in conjugate pairs if a real-coefficient
    /// result is expected; the imaginary residue is dropped.
    pub fn from_roots(roots: &[Complex64]) -> Self {
        let mut c = vec![Complex64::ONE];
        for &r in roots {
            // multiply by (x - r)
            let mut next = vec![Complex64::ZERO; c.len() + 1];
            for (k, &ck) in c.iter().enumerate() {
                next[k + 1] += ck;
                next[k] -= ck * r;
            }
            c = next;
        }
        Polynomial::new(c.into_iter().map(|z| z.re).collect())
    }

    /// Borrows the coefficients in ascending-power order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Returns the degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.len() == 1 && self.coeffs[0] == 0.0 {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Evaluates the polynomial at a real point by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluates the polynomial at a complex point by Horner's rule.
    pub fn eval_complex(&self, z: Complex64) -> Complex64 {
        self.coeffs
            .iter()
            .rev()
            .fold(Complex64::ZERO, |acc, &c| acc * z + Complex64::from_real(c))
    }

    /// Multiplies two polynomials.
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Polynomial::new(out)
    }

    /// Adds two polynomials.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0.0; n];
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.coeffs.get(k).copied().unwrap_or(0.0)
                + other.coeffs.get(k).copied().unwrap_or(0.0);
        }
        Polynomial::new(out)
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: f64) -> Polynomial {
        Polynomial::new(self.coeffs.iter().map(|c| c * s).collect())
    }

    /// Finds all complex roots with the Durand–Kerner iteration.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DegenerateInput`] for constant or zero
    /// polynomials, and [`NumericsError::NoConvergence`] if the iteration
    /// does not settle within its internal budget (10 000 sweeps), which for
    /// well-scaled polynomials of degree ≤ 50 does not occur in practice.
    pub fn roots(&self) -> Result<Vec<Complex64>, NumericsError> {
        let n = match self.degree() {
            None | Some(0) => {
                return Err(NumericsError::DegenerateInput(
                    "root finding needs degree >= 1",
                ))
            }
            Some(n) => n,
        };

        // Normalize to a monic polynomial for stability.
        let lead = self.coeffs[n];
        let monic: Vec<f64> = self.coeffs.iter().map(|c| c / lead).collect();
        let poly = Polynomial {
            coeffs: monic.clone(),
        };

        // Cauchy bound on root magnitude guides the initial ring radius.
        let bound = 1.0 + monic[..n].iter().fold(0.0f64, |m, c| m.max(c.abs()));

        // Standard Durand–Kerner start: points on a ring with an irrational
        // angle offset so no starting point is a root of unity symmetry axis.
        let mut z: Vec<Complex64> = (0..n)
            .map(|k| {
                Complex64::cis(0.4 + k as f64 * std::f64::consts::TAU / n as f64) * (bound * 0.7)
            })
            .collect();

        const MAX_SWEEPS: usize = 10_000;
        // The achievable step size is limited by rounding noise in the
        // polynomial evaluation, which scales with the root magnitudes —
        // an absolute tolerance stalls on well-conditioned inputs.
        let tol = 1e-12 * bound.max(1.0);
        for sweep in 0..MAX_SWEEPS {
            let mut max_step = 0.0f64;
            for i in 0..n {
                let mut denom = Complex64::ONE;
                for j in 0..n {
                    if i != j {
                        denom *= z[i] - z[j];
                    }
                }
                let step = poly.eval_complex(z[i]) / denom;
                z[i] -= step;
                max_step = max_step.max(step.abs());
            }
            if max_step < tol {
                return Ok(z);
            }
            if z.iter().any(|zi| zi.is_nan()) {
                return Err(NumericsError::NoConvergence {
                    algorithm: "durand-kerner",
                    iterations: sweep,
                });
            }
        }
        Err(NumericsError::NoConvergence {
            algorithm: "durand-kerner",
            iterations: MAX_SWEEPS,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real_roots(p: &Polynomial) -> Vec<f64> {
        let mut r: Vec<f64> = p
            .roots()
            .unwrap()
            .into_iter()
            .filter(|z| z.im.abs() < 1e-8)
            .map(|z| z.re)
            .collect();
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        r
    }

    #[test]
    fn eval_horner() {
        let p = Polynomial::new(vec![1.0, -2.0, 3.0]); // 1 - 2x + 3x^2
        assert_eq!(p.eval(0.0), 1.0);
        assert_eq!(p.eval(1.0), 2.0);
        assert_eq!(p.eval(2.0), 9.0);
    }

    #[test]
    fn trailing_zeros_trimmed() {
        let p = Polynomial::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn zero_polynomial_has_no_degree() {
        assert_eq!(Polynomial::new(vec![0.0]).degree(), None);
        assert!(Polynomial::new(vec![0.0]).roots().is_err());
    }

    #[test]
    fn quadratic_roots() {
        // (x-1)(x-2) = 2 - 3x + x^2
        let p = Polynomial::new(vec![2.0, -3.0, 1.0]);
        let r = sorted_real_roots(&p);
        assert!((r[0] - 1.0).abs() < 1e-9);
        assert!((r[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn complex_conjugate_roots() {
        // x^2 + 1
        let p = Polynomial::new(vec![1.0, 0.0, 1.0]);
        let roots = p.roots().unwrap();
        let mut ims: Vec<f64> = roots.iter().map(|z| z.im).collect();
        ims.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((ims[0] + 1.0).abs() < 1e-9 && (ims[1] - 1.0).abs() < 1e-9);
        assert!(roots.iter().all(|z| z.re.abs() < 1e-9));
    }

    #[test]
    fn from_roots_round_trip() {
        let roots = [
            Complex64::new(0.5, 0.0),
            Complex64::new(-1.5, 0.0),
            Complex64::new(0.2, 0.7),
            Complex64::new(0.2, -0.7),
        ];
        let p = Polynomial::from_roots(&roots);
        for &r in &roots {
            assert!(p.eval_complex(r).abs() < 1e-10);
        }
        assert_eq!(p.degree(), Some(4));
    }

    #[test]
    fn high_degree_chebyshev_like_roots_converge() {
        // (x - k/10) for k = -5..=5 gives clustered roots, a stress case.
        let roots: Vec<Complex64> = (-5..=5)
            .map(|k| Complex64::from_real(k as f64 / 10.0))
            .collect();
        let p = Polynomial::from_roots(&roots);
        let found = sorted_real_roots(&p);
        assert_eq!(found.len(), 11);
        for (f, k) in found.iter().zip(-5..=5) {
            assert!(
                (f - k as f64 / 10.0).abs() < 1e-6,
                "root {f} vs {}",
                k as f64 / 10.0
            );
        }
    }

    #[test]
    fn mul_add_scale() {
        let a = Polynomial::new(vec![1.0, 1.0]); // 1 + x
        let b = Polynomial::new(vec![-1.0, 1.0]); // -1 + x
        assert_eq!(a.mul(&b).coeffs(), &[-1.0, 0.0, 1.0]);
        assert_eq!(a.add(&b).coeffs(), &[0.0, 2.0]);
        assert_eq!(a.scale(3.0).coeffs(), &[3.0, 3.0]);
        assert_eq!(Polynomial::monomial(2.0, 3).coeffs(), &[0.0, 0.0, 0.0, 2.0]);
    }
}

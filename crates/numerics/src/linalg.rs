//! Dense linear algebra: matrices, Gaussian elimination, least squares.
//!
//! The biorthogonal dual-filter designer in `wavefuse-dtcwt` assembles the
//! perfect-reconstruction conditions into a small dense system and solves it
//! here. Sizes are tiny (≤ ~40 unknowns), so a straightforward partial-pivot
//! LU-style elimination is both adequate and easy to audit.

use crate::NumericsError;

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use wavefuse_numerics::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
/// let x = a.solve(&[2.0, 8.0]).unwrap();
/// assert_eq!(x, vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if rows have unequal
    /// lengths, or [`NumericsError::DegenerateInput`] if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericsError> {
        let r = rows.len();
        if r == 0 {
            return Err(NumericsError::DegenerateInput("matrix with no rows"));
        }
        let c = rows[0].len();
        if c == 0 {
            return Err(NumericsError::DegenerateInput("matrix with no columns"));
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(NumericsError::DimensionMismatch {
                    expected: c,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, NumericsError> {
        if self.cols != other.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if v.len() != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.cols,
                actual: v.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect())
    }

    /// Solves the square system `A x = b` by Gaussian elimination with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] if `A` is not square or `b` has
    ///   the wrong length.
    /// * [`NumericsError::SingularMatrix`] if a pivot is smaller than
    ///   `1e-12` times the largest element, i.e. the system is numerically
    ///   singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if self.rows != self.cols {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                actual: self.cols,
            });
        }
        if b.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.to_vec();
        let scale = a.data.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = a[(col, col)].abs();
            for r in col + 1..n {
                let v = a[(r, col)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 * scale {
                return Err(NumericsError::SingularMatrix);
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = a[(col, j)];
                    a[(col, j)] = a[(pivot_row, j)];
                    a[(pivot_row, j)] = tmp;
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            for r in col + 1..n {
                let f = a[(r, col)] / a[(col, col)];
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[(r, j)] -= f * a[(col, j)];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in col + 1..n {
                s -= a[(col, j)] * x[j];
            }
            x[col] = s / a[(col, col)];
        }
        Ok(x)
    }

    /// Solves the overdetermined system `A x ≈ b` in the least-squares sense
    /// via the normal equations `AᵀA x = Aᵀb`.
    ///
    /// Adequate for the small, well-conditioned design systems in this
    /// workspace; not intended for ill-conditioned regression.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::solve`]; in particular a rank-deficient
    /// `A` yields [`NumericsError::SingularMatrix`].
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if b.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                expected: self.rows,
                actual: b.len(),
            });
        }
        let at = self.transpose();
        let ata = at.matmul(self)?;
        let atb = at.matvec(b)?;
        ata.solve(&atb)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let a = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero pivot forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert_eq!(x, vec![5.0, 3.0]);
    }

    #[test]
    fn solve_3x3() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expect) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(NumericsError::SingularMatrix));
    }

    #[test]
    fn non_square_solve_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[0.0, 0.0]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let ab = a.matmul(&b).unwrap();
        assert_eq!(ab, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]).unwrap());
        assert_eq!(
            a.transpose(),
            Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]).unwrap()
        );
    }

    #[test]
    fn least_squares_line_fit() {
        // Fit y = 2x + 1 through noisy-free points; LS must recover exactly.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs).unwrap();
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let sol = a.solve_least_squares(&b).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-12);
        assert!((sol[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[1.0][..]]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }
}

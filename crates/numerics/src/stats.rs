//! Summary statistics and histogram helpers.
//!
//! Shared by the fusion-quality metrics (`wavefuse-metrics`) and the power
//! trace analysis (`wavefuse-power`).

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance (`1/N` normalization). Returns `0.0` for an empty
/// slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population covariance of two equal-length slices. Returns `0.0` if the
/// slices are empty or of unequal length.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.is_empty() || xs.len() != ys.len() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Minimum and maximum of a slice, ignoring NaNs.
///
/// Returns `None` for an empty slice or a slice of only NaNs.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    let mut it = xs.iter().copied().filter(|x| !x.is_nan());
    let first = it.next()?;
    Some(it.fold((first, first), |(lo, hi), x| (lo.min(x), hi.max(x))))
}

/// A fixed-bin histogram over a closed value range.
///
/// # Examples
///
/// ```
/// use wavefuse_numerics::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 1.0, 4);
/// for v in [0.1, 0.1, 0.6, 0.9] {
///     h.add(v);
/// }
/// assert_eq!(h.counts(), &[2, 0, 1, 1]);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one sample. Values outside `[lo, hi]` are clamped to the edge
    /// bins; NaNs are ignored.
    pub fn add(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let t = ((v - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = (t.max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every sample of a slice.
    pub fn extend_from(&mut self, vs: &[f64]) {
        for &v in vs {
            self.add(v);
        }
    }

    /// Borrows the per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized bin probabilities. Returns an all-zero vector when no
    /// samples have been recorded.
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Shannon entropy of the bin distribution, in bits.
    pub fn entropy_bits(&self) -> f64 {
        entropy_bits(&self.probabilities())
    }
}

/// Shannon entropy (bits) of a probability vector. Zero entries are skipped;
/// the vector need not be exactly normalized.
pub fn entropy_bits(p: &[f64]) -> f64 {
    -p.iter()
        .filter(|&&pi| pi > 0.0)
        .map(|&pi| pi * pi.log2())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_slices_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(covariance(&[], &[]), 0.0);
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn covariance_of_identical_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((covariance(&xs, &xs) - variance(&xs)).abs() < 1e-15);
    }

    #[test]
    fn min_max_skips_nan() {
        assert_eq!(min_max(&[f64::NAN, 1.0, -2.0]), Some((-2.0, 1.0)));
        assert_eq!(min_max(&[f64::NAN]), None);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-5.0);
        h.add(5.0);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn histogram_ignores_nan() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn uniform_distribution_maximizes_entropy() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.extend_from(&[0.5, 1.5, 2.5, 3.5]);
        assert!((h.entropy_bits() - 2.0).abs() < 1e-12);

        let mut peaked = Histogram::new(0.0, 4.0, 4);
        peaked.extend_from(&[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(peaked.entropy_bits(), 0.0);
    }

    #[test]
    fn entropy_of_fair_coin() {
        assert!((entropy_bits(&[0.5, 0.5]) - 1.0).abs() < 1e-15);
    }
}

//! Minimal complex-number arithmetic.
//!
//! The workspace deliberately avoids external numerics crates, so this module
//! supplies the small complex type used by the FFT, the polynomial root
//! finder and the DT-CWT's oriented subbands.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// # Examples
///
/// ```
/// use wavefuse_numerics::complex::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates the unit-magnitude complex number `e^{i theta}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use wavefuse_numerics::complex::Complex64;
    /// let z = Complex64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-15 && z.im.abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse.
    ///
    /// Returns an infinite/NaN value if `self` is zero, mirroring `1.0 / 0.0`
    /// semantics for floats.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Raises `self` to a non-negative integer power by repeated squaring.
    pub fn powu(self, mut n: u32) -> Self {
        let mut base = self;
        let mut acc = Complex64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns the principal square root (the one with non-negative real
    /// part).
    ///
    /// # Examples
    ///
    /// ```
    /// use wavefuse_numerics::complex::Complex64;
    /// let z = Complex64::new(-4.0, 0.0).sqrt();
    /// assert!((z - Complex64::new(0.0, 2.0)).abs() < 1e-12);
    /// ```
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex64::cis(theta / 2.0) * r.sqrt()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    // Division by the reciprocal is the standard numerically-stable form.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -4.0);
        assert_eq!(a + b, Complex64::new(4.0, -2.0));
        assert_eq!(a - b, Complex64::new(-2.0, 6.0));
        assert_eq!(a * b, Complex64::new(11.0, 2.0));
        assert!(close(a / b * b, a, 1e-12));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
    }

    #[test]
    fn cis_unit_circle() {
        for k in 0..16 {
            let th = k as f64 * std::f64::consts::TAU / 16.0;
            let z = Complex64::cis(th);
            assert!((z.abs() - 1.0).abs() < 1e-15);
            assert!((z.arg() - th).rem_euclid(std::f64::consts::TAU) < 1e-12);
        }
    }

    #[test]
    fn powu_matches_repeated_multiplication() {
        let z = Complex64::new(0.9, 0.3);
        let mut acc = Complex64::ONE;
        for n in 0..12u32 {
            assert!(close(z.powu(n), acc, 1e-12), "n = {n}");
            acc *= z;
        }
    }

    #[test]
    fn recip_of_i() {
        assert!(close(Complex64::I.recip(), -Complex64::I, 1e-15));
    }

    #[test]
    fn sum_over_roots_of_unity_is_zero() {
        let n = 7;
        let s: Complex64 = (0..n)
            .map(|k| Complex64::cis(k as f64 * std::f64::consts::TAU / n as f64))
            .sum();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn display_renders_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }
}

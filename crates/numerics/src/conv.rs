//! Direct convolution and correlation primitives.
//!
//! These are the reference (textbook) implementations that the wavelet
//! filter banks and the SIMD/FPGA engines are validated against.

/// Full linear convolution of two sequences.
///
/// The output length is `a.len() + b.len() - 1`. An empty input yields an
/// empty output.
///
/// # Examples
///
/// ```
/// use wavefuse_numerics::conv::convolve;
/// assert_eq!(convolve(&[1.0, 2.0], &[1.0, 1.0]), vec![1.0, 3.0, 2.0]);
/// ```
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

/// Cross-correlation `sum_n a[n] * b[n + lag]` for `lag` in
/// `-(b.len()-1) ..= a.len()-1`, i.e. `convolve(a, reverse(b))`.
pub fn correlate(a: &[f64], b: &[f64]) -> Vec<f64> {
    let rev: Vec<f64> = b.iter().rev().copied().collect();
    convolve(a, &rev)
}

/// Autocorrelation of `x` at even lags only:
/// `r[k] = sum_n x[n] * x[n + 2k]` for `k = 0 ..= (x.len()-1)/2`.
///
/// This is exactly the quantity appearing in the orthonormal
/// perfect-reconstruction condition `r[0] = 1, r[k>0] = 0`, so the wavelet
/// tests use it directly.
pub fn autocorrelation_even_lags(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let kmax = if n == 0 { 0 } else { (n - 1) / 2 };
    (0..=kmax)
        .map(|k| (0..n - 2 * k).map(|i| x[i] * x[i + 2 * k]).sum())
        .collect()
}

/// Upsamples by 2 (inserts a zero after every sample).
///
/// Used to build the à-trous filters of successive wavelet levels for
/// equivalent-filter analysis.
pub fn upsample2(x: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(x.len() * 2);
    for &v in x {
        out.push(v);
        out.push(0.0);
    }
    // Trailing zero carries no information for FIR filters.
    if out.last() == Some(&0.0) {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolve_identity_impulse() {
        let x = [3.0, -1.0, 2.0];
        assert_eq!(convolve(&x, &[1.0]), x.to_vec());
    }

    #[test]
    fn convolve_commutative() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -0.5, 1.5, 2.5];
        assert_eq!(convolve(&a, &b), convolve(&b, &a));
    }

    #[test]
    fn convolve_empty() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
    }

    #[test]
    fn correlate_matches_manual() {
        // a = [1,2], b = [3,4]; correlate = convolve(a, [4,3]) = [4, 11, 6]
        assert_eq!(correlate(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 11.0, 6.0]);
    }

    #[test]
    fn autocorrelation_of_orthonormal_haar() {
        let h = [
            std::f64::consts::FRAC_1_SQRT_2,
            std::f64::consts::FRAC_1_SQRT_2,
        ];
        let r = autocorrelation_even_lags(&h);
        assert_eq!(r.len(), 1);
        assert!((r[0] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn autocorrelation_even_lags_manual() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = autocorrelation_even_lags(&x);
        // k=0: 1+4+9+16+25 = 55; k=1: 1*3+2*4+3*5 = 26; k=2: 1*5 = 5
        assert_eq!(r, vec![55.0, 26.0, 5.0]);
    }

    #[test]
    fn upsample2_shape() {
        assert_eq!(upsample2(&[1.0, 2.0, 3.0]), vec![1.0, 0.0, 2.0, 0.0, 3.0]);
        assert!(upsample2(&[]).is_empty());
    }
}

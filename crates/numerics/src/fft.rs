//! Fast Fourier transforms.
//!
//! Provides an iterative radix-2 Cooley–Tukey FFT for power-of-two lengths
//! and a Bluestein chirp-z fallback for arbitrary lengths, plus helpers for
//! real signals and filter frequency responses. Used by the DT-CWT analysis
//! tooling (shift-invariance measurements, filter spectra) and by the
//! quality metrics.

use crate::complex::Complex64;
use crate::NumericsError;

/// Direction of a Fourier transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time domain to frequency domain (negative exponent).
    Forward,
    /// Frequency domain to time domain (positive exponent, scaled by `1/n`).
    Inverse,
}

/// Computes an in-place FFT of `data`.
///
/// Power-of-two lengths use the radix-2 algorithm; other lengths fall back
/// to Bluestein's algorithm. The inverse transform includes the `1/n`
/// normalization, so `fft(Inverse) ∘ fft(Forward)` is the identity.
///
/// # Errors
///
/// Returns [`NumericsError::DegenerateInput`] when `data` is empty.
///
/// # Examples
///
/// ```
/// use wavefuse_numerics::complex::Complex64;
/// use wavefuse_numerics::fft::{fft, Direction};
///
/// let mut x = vec![Complex64::ONE; 4];
/// fft(&mut x, Direction::Forward)?;
/// assert!((x[0].re - 4.0).abs() < 1e-12); // DC bin carries the sum
/// assert!(x[1].abs() < 1e-12);
/// # Ok::<(), wavefuse_numerics::NumericsError>(())
/// ```
pub fn fft(data: &mut [Complex64], dir: Direction) -> Result<(), NumericsError> {
    let n = data.len();
    if n == 0 {
        return Err(NumericsError::DegenerateInput("empty fft input"));
    }
    if n == 1 {
        return Ok(());
    }
    if n.is_power_of_two() {
        fft_radix2(data, dir);
    } else {
        bluestein(data, dir)?;
    }
    Ok(())
}

fn fft_radix2(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex64::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half] * w;
                chunk[k] = u + v;
                chunk[k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }

    if dir == Direction::Inverse {
        let inv_n = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = *z * inv_n;
        }
    }
}

/// Bluestein chirp-z transform for arbitrary lengths.
fn bluestein(data: &mut [Complex64], dir: Direction) -> Result<(), NumericsError> {
    let n = data.len();
    let m = (2 * n - 1).next_power_of_two();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };

    // chirp[k] = exp(sign * i * pi * k^2 / n)
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            let k2 = (k as u64 * k as u64) % (2 * n as u64);
            Complex64::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();

    let mut a = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = data[k] * chirp[k];
    }
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    fft_radix2(&mut a, Direction::Forward);
    fft_radix2(&mut b, Direction::Forward);
    for k in 0..m {
        a[k] *= b[k];
    }
    fft_radix2(&mut a, Direction::Inverse);

    for k in 0..n {
        data[k] = a[k] * chirp[k];
    }
    if dir == Direction::Inverse {
        let inv_n = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = *z * inv_n;
        }
    }
    Ok(())
}

/// Computes the FFT of a real signal, returning the full complex spectrum.
///
/// # Errors
///
/// Returns [`NumericsError::DegenerateInput`] when `signal` is empty.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex64>, NumericsError> {
    let mut data: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_real(x)).collect();
    fft(&mut data, Direction::Forward)?;
    Ok(data)
}

/// Evaluates the DTFT magnitude response `|H(e^{jw})|` of an FIR filter at
/// `points` uniformly spaced frequencies in `[0, pi]`.
///
/// # Errors
///
/// Returns [`NumericsError::DegenerateInput`] when `taps` is empty or
/// `points == 0`.
pub fn magnitude_response(taps: &[f64], points: usize) -> Result<Vec<f64>, NumericsError> {
    if taps.is_empty() || points == 0 {
        return Err(NumericsError::DegenerateInput(
            "magnitude response needs taps and points",
        ));
    }
    Ok((0..points)
        .map(|k| {
            let w = std::f64::consts::PI * k as f64 / (points - 1).max(1) as f64;
            taps.iter()
                .enumerate()
                .map(|(n, &h)| Complex64::cis(-w * n as f64) * h)
                .sum::<Complex64>()
                .abs()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize) {
        let signal: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect();
        let mut data = signal.clone();
        fft(&mut data, Direction::Forward).unwrap();
        fft(&mut data, Direction::Inverse).unwrap();
        for (a, b) in data.iter().zip(&signal) {
            assert!((*a - *b).abs() < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn roundtrip_power_of_two() {
        for n in [1, 2, 4, 8, 64, 256] {
            roundtrip(n);
        }
    }

    #[test]
    fn roundtrip_arbitrary_length() {
        for n in [3, 5, 6, 7, 12, 35, 88, 100] {
            roundtrip(n);
        }
    }

    #[test]
    fn empty_input_rejected() {
        let mut empty: Vec<Complex64> = vec![];
        assert!(fft(&mut empty, Direction::Forward).is_err());
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft(&mut x, Direction::Forward).unwrap();
        for z in &x {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let f = 5;
        let mut x: Vec<Complex64> = (0..n)
            .map(|k| Complex64::cis(std::f64::consts::TAU * f as f64 * k as f64 / n as f64))
            .collect();
        fft(&mut x, Direction::Forward).unwrap();
        for (k, z) in x.iter().enumerate() {
            if k == f {
                assert!((z.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let n = 128;
        let sig: Vec<f64> = (0..n).map(|k| ((k * k) as f64 * 0.01).sin()).collect();
        let spec = fft_real(&sig).unwrap();
        let time_energy: f64 = sig.iter().map(|x| x * x).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn bluestein_matches_radix2_on_power_of_two() {
        let n = 16;
        let sig: Vec<Complex64> = (0..n)
            .map(|k| Complex64::new(k as f64, -(k as f64) * 0.5))
            .collect();
        let mut a = sig.clone();
        fft(&mut a, Direction::Forward).unwrap();
        let mut b = sig;
        bluestein(&mut b, Direction::Forward).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-8);
        }
    }

    #[test]
    fn magnitude_response_of_moving_average() {
        // 2-tap moving average: |H| = |cos(w/2)| * 2 at normalization used.
        let resp = magnitude_response(&[0.5, 0.5], 5).unwrap();
        assert!((resp[0] - 1.0).abs() < 1e-12); // DC gain 1
        assert!(resp[4].abs() < 1e-12); // null at Nyquist
    }
}

use std::error::Error;
use std::fmt;

/// Error type for numerical routines in this crate.
///
/// All fallible public functions in `wavefuse-numerics` return this type,
/// so callers can uniformly propagate failures with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NumericsError {
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm that failed (e.g. `"durand-kerner"`).
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A linear system was singular (or numerically singular) and cannot be
    /// solved.
    SingularMatrix,
    /// Matrix/vector dimensions do not agree for the requested operation.
    DimensionMismatch {
        /// Dimension that was expected.
        expected: usize,
        /// Dimension that was provided.
        actual: usize,
    },
    /// The input was empty or otherwise degenerate (e.g. a zero polynomial).
    DegenerateInput(&'static str),
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
            NumericsError::SingularMatrix => write!(f, "matrix is singular to working precision"),
            NumericsError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumericsError::DegenerateInput(what) => write!(f, "degenerate input: {what}"),
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            NumericsError::NoConvergence {
                algorithm: "durand-kerner",
                iterations: 100,
            }
            .to_string(),
            NumericsError::SingularMatrix.to_string(),
            NumericsError::DimensionMismatch {
                expected: 3,
                actual: 4,
            }
            .to_string(),
            NumericsError::DegenerateInput("zero polynomial").to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "message ends with period: {m}");
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}

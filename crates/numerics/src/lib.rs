//! Numerical substrate for the wavefuse workspace.
//!
//! This crate provides the small, self-contained numerical kernels that the
//! wavelet filter-design and analysis code in `wavefuse-dtcwt` is built on:
//!
//! * [`complex`] — a minimal complex-number type, [`complex::Complex64`].
//! * [`poly`] — dense polynomials and Durand–Kerner root finding, used by the
//!   Daubechies spectral-factorization filter designer.
//! * [`linalg`] — dense matrices, partial-pivot Gaussian elimination and
//!   least-squares solves, used by the biorthogonal dual-filter designer.
//! * [`fft`] — radix-2 and Bluestein FFTs, used for frequency-response and
//!   shift-invariance analysis.
//! * [`conv`] — direct convolution/correlation primitives.
//! * [`stats`] — summary statistics and histogram/entropy helpers shared by
//!   the fusion-quality metrics.
//!
//! The crate is dependency-free and deterministic: the same inputs always
//! produce bit-identical outputs, which the simulation crates rely on.
//!
//! # Examples
//!
//! ```
//! use wavefuse_numerics::poly::Polynomial;
//!
//! // roots of x^2 - 3x + 2 = (x - 1)(x - 2)
//! let p = Polynomial::new(vec![2.0, -3.0, 1.0]);
//! let mut roots: Vec<f64> = p.roots().unwrap().iter().map(|r| r.re).collect();
//! roots.sort_by(|a, b| a.partial_cmp(b).unwrap());
//! assert!((roots[0] - 1.0).abs() < 1e-9 && (roots[1] - 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod conv;
pub mod fft;
pub mod linalg;
pub mod poly;
pub mod stats;

mod error;

pub use error::NumericsError;

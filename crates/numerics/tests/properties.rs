//! Property-based tests for the numerical substrate.

// Needs the external `proptest` crate, which the offline build cannot
// resolve: restore the dev-dependencies listed in the root Cargo.toml on
// a networked machine and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

use proptest::prelude::*;
use wavefuse_numerics::complex::Complex64;
use wavefuse_numerics::conv::{convolve, correlate};
use wavefuse_numerics::fft::{fft, fft_real, Direction};
use wavefuse_numerics::linalg::Matrix;
use wavefuse_numerics::poly::Polynomial;
use wavefuse_numerics::stats;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 1..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trip_any_length(sig in arb_signal(200)) {
        let mut data: Vec<Complex64> = sig.iter().map(|&x| Complex64::from_real(x)).collect();
        fft(&mut data, Direction::Forward).unwrap();
        fft(&mut data, Direction::Inverse).unwrap();
        for (z, &x) in data.iter().zip(&sig) {
            prop_assert!((z.re - x).abs() < 1e-6, "re {} vs {}", z.re, x);
            prop_assert!(z.im.abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_any_length(sig in arb_signal(128)) {
        let spec = fft_real(&sig).unwrap();
        let time: f64 = sig.iter().map(|x| x * x).sum();
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / sig.len() as f64;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    #[test]
    fn fft_linearity(a in arb_signal(64), scale in -5.0f64..5.0) {
        let n = a.len();
        let mut x: Vec<Complex64> = a.iter().map(|&v| Complex64::from_real(v)).collect();
        fft(&mut x, Direction::Forward).unwrap();
        let mut sx: Vec<Complex64> = a.iter().map(|&v| Complex64::from_real(v * scale)).collect();
        fft(&mut sx, Direction::Forward).unwrap();
        for k in 0..n {
            prop_assert!((sx[k] - x[k] * scale).abs() < 1e-6 * (1.0 + x[k].abs() * scale.abs()));
        }
    }

    #[test]
    fn polynomial_roots_are_roots(
        roots in proptest::collection::vec(-3.0f64..3.0, 1..=8)
    ) {
        // Keep roots separated so Durand-Kerner converges crisply.
        let mut rs: Vec<f64> = roots;
        rs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rs.dedup_by(|a, b| (*a - *b).abs() < 0.1);
        let zs: Vec<Complex64> = rs.iter().map(|&r| Complex64::from_real(r)).collect();
        let p = Polynomial::from_roots(&zs);
        let found = p.roots().unwrap();
        prop_assert_eq!(found.len(), rs.len());
        for z in found {
            prop_assert!(p.eval_complex(z).abs() < 1e-6, "residual {}", p.eval_complex(z).abs());
        }
    }

    #[test]
    fn convolution_is_commutative_and_linear(
        a in arb_signal(32),
        b in arb_signal(32),
        k in -4.0f64..4.0,
    ) {
        let ab = convolve(&a, &b);
        let ba = convolve(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
        }
        let ka: Vec<f64> = a.iter().map(|v| v * k).collect();
        let kab = convolve(&ka, &b);
        for (x, y) in kab.iter().zip(&ab) {
            prop_assert!((x - k * y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn correlate_at_zero_lag_is_dot_product(a in arb_signal(32)) {
        let r = correlate(&a, &a);
        // Zero lag sits at index len-1 of the full correlation.
        let dot: f64 = a.iter().map(|x| x * x).sum();
        prop_assert!((r[a.len() - 1] - dot).abs() < 1e-9 * (1.0 + dot));
    }

    #[test]
    fn solve_recovers_known_solution(
        x in proptest::collection::vec(-10.0f64..10.0, 2..=6),
        seed in 0u64..1000,
    ) {
        // Build a well-conditioned matrix: diagonally dominant random.
        let n = x.len();
        let mut a = Matrix::zeros(n, n);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545f4914f6cdd1d) as f64 / u64::MAX as f64) - 0.5
        };
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next();
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0;
        }
        let b = a.matvec(&x).unwrap();
        let solved = a.solve(&b).unwrap();
        for (s, e) in solved.iter().zip(&x) {
            prop_assert!((s - e).abs() < 1e-8 * (1.0 + e.abs()));
        }
    }

    #[test]
    fn variance_is_translation_invariant(xs in arb_signal(64), shift in -50.0f64..50.0) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let v0 = stats::variance(&xs);
        let v1 = stats::variance(&shifted);
        prop_assert!((v0 - v1).abs() < 1e-6 * (1.0 + v0));
    }

    #[test]
    fn histogram_total_matches_samples(xs in arb_signal(64)) {
        let mut h = stats::Histogram::new(-100.0, 100.0, 16);
        h.extend_from(&xs);
        prop_assert_eq!(h.total(), xs.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
        let p = h.probabilities();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

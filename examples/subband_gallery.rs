//! Visualizes the DT-CWT's six orientation-selective subbands (the
//! property behind the fusion quality the paper builds on) and the
//! denoising extension.
//!
//! ```text
//! cargo run --release --example subband_gallery
//! ```
//!
//! Writes, under `out/gallery/`:
//! * the magnitude of each oriented subband for a star-like test pattern
//!   (each band lights up only for edges near its angle);
//! * a noisy thermal capture before and after DT-CWT soft-thresholding.

use wavefuse::dtcwt::denoise::{denoise, estimate_noise_sigma};
use wavefuse::dtcwt::{Dtcwt, Image, Orientation};
use wavefuse::video::pgm;
use wavefuse::video::scene::ScenePair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A radial "siemens star" excites every orientation somewhere.
    let n = 128;
    let star = Image::from_fn(n, n, |x, y| {
        let dx = x as f64 - n as f64 / 2.0;
        let dy = y as f64 - n as f64 / 2.0;
        let theta = dy.atan2(dx);
        let r = (dx * dx + dy * dy).sqrt();
        if r < 4.0 || r > n as f64 / 2.0 - 2.0 {
            0.5
        } else {
            (0.5 + 0.5 * (theta * 12.0).sin()) as f32
        }
    });
    pgm::write_pgm(&star, "out/gallery/star_input.pgm")?;

    let t = Dtcwt::new(2)?;
    let pyr = t.forward(&star)?;
    println!("level-1 subband energies (the six orientations):");
    for o in Orientation::ALL {
        let band = pyr.subband(0, o);
        let mag = band.magnitude();
        // Normalize for display.
        let peak = mag
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v))
            .max(1e-9);
        let vis = Image::from_fn(mag.width(), mag.height(), |x, y| mag.get(x, y) / peak);
        let name = format!(
            "out/gallery/band_{}.pgm",
            o.to_string().replace('+', "p").replace('-', "m")
        );
        pgm::write_pgm(&vis, &name)?;
        println!("  {o:>7}: energy {:>10.1} -> {name}", band.energy());
    }

    // Denoising demo on a noisy thermal capture.
    let scene = ScenePair::new(3);
    let clean_ish = scene.render_thermal(n, n, 0.0);
    let noisy = Image::from_fn(n, n, |x, y| {
        // Amplify the sensor's own grain with an extra deterministic layer.
        let v = clean_ish.get(x, y);
        let h = (x as u32)
            .wrapping_mul(0x9e3779b9)
            .wrapping_add((y as u32).wrapping_mul(0x85ebca6b));
        v + ((h >> 8) as f32 / (1u32 << 24) as f32 - 0.5) * 0.15
    });
    let t3 = Dtcwt::new(3)?;
    let sigma = estimate_noise_sigma(&t3.forward(&noisy)?);
    let cleaned = denoise(&t3, &noisy, 1.0)?;
    pgm::write_pgm(&noisy, "out/gallery/thermal_noisy.pgm")?;
    pgm::write_pgm(&cleaned, "out/gallery/thermal_denoised.pgm")?;
    println!("\ndenoise: estimated sigma {sigma:.4}; wrote thermal_{{noisy,denoised}}.pgm");
    Ok(())
}

//! Fusion-quality comparison: DT-CWT fusion vs. the literature baselines
//! (the paper's §I/§II positioning), with the standard metrics.
//!
//! ```text
//! cargo run --release --example quality_comparison
//! ```

use wavefuse::core::baseline::{average_fusion, dwt_fusion, laplacian_fusion};
use wavefuse::core::rules::{FusionRule, LowpassRule};
use wavefuse::core::{Backend, FusionEngine};
use wavefuse::dtcwt::{FilterBank, Image};
use wavefuse::metrics::{entropy, fusion_mutual_information, petrovic_qabf, spatial_frequency};
use wavefuse::video::pgm;
use wavefuse::video::scene::ScenePair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = ScenePair::new(2016);
    let a = scene.render_visible(176, 144, 0.0);
    let b = scene.render_thermal(176, 144, 0.0);

    let mut methods: Vec<(&str, Image)> = vec![
        ("averaging", average_fusion(&a, &b)),
        ("laplacian-pyramid", laplacian_fusion(&a, &b, 3)?),
        (
            "dwt-cdf97-maxabs",
            dwt_fusion(&a, &b, FilterBank::cdf_9_7()?, 3)?,
        ),
        (
            "dwt-haar-maxabs",
            dwt_fusion(&a, &b, FilterBank::haar()?, 3)?,
        ),
    ];
    let mut max_engine =
        FusionEngine::with_rules(3, FusionRule::MaxMagnitude, LowpassRule::Average)?;
    methods.push((
        "dtcwt-maxmag",
        max_engine.fuse(&a, &b, Backend::Neon)?.image,
    ));
    let mut win_engine = FusionEngine::with_rules(
        3,
        FusionRule::WindowEnergy { radius: 1 },
        LowpassRule::Average,
    )?;
    methods.push((
        "dtcwt-windowenergy",
        win_engine.fuse(&a, &b, Backend::Neon)?.image,
    ));

    println!(
        "{:>20} | {:>8} {:>9} {:>8} {:>8}",
        "method", "entropy", "spatial f", "Q^AB/F", "MI"
    );
    println!("{}", "-".repeat(62));
    for (name, img) in &methods {
        println!(
            "{name:>20} | {:>8.3} {:>9.4} {:>8.3} {:>8.3}",
            entropy(img),
            spatial_frequency(img),
            petrovic_qabf(&a, &b, img),
            fusion_mutual_information(&a, &b, img)
        );
        pgm::write_pgm(img, format!("out/quality_{name}.pgm"))?;
    }
    pgm::write_pgm(&a, "out/quality_source_visible.pgm")?;
    pgm::write_pgm(&b, "out/quality_source_thermal.pgm")?;
    println!("\nwrote out/quality_*.pgm for visual inspection");
    Ok(())
}

//! Quickstart: fuse one visible/thermal frame pair and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Renders the synthetic dual-modality scene, fuses the pair with the
//! DT-CWT engine on each backend, verifies they agree, and writes the three
//! images as PGM files under `out/`.

use wavefuse::core::{Backend, FusionEngine};
use wavefuse::metrics;
use wavefuse::video::pgm;
use wavefuse::video::scene::ScenePair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A scene viewed by two sensors (stand-in for the paper's webcam +
    //    thermal camera; see DESIGN.md for the substitution rationale).
    let scene = ScenePair::new(42);
    let visible = scene.render_visible(88, 72, 0.0);
    let thermal = scene.render_thermal(88, 72, 0.0);

    // 2. The fusion engine: 3-level DT-CWT, window-energy fusion rule.
    let mut engine = FusionEngine::new(3)?;

    // 3. Fuse on each backend; the images agree, the costs differ.
    println!("backend    | time/frame | energy/frame");
    let mut fused = None;
    for backend in Backend::ALL {
        let out = engine.fuse(&visible, &thermal, backend)?;
        println!(
            "{:<10} | {:>7.2} ms | {:>8.3} mJ",
            out.backend.label(),
            out.timing.total_seconds() * 1e3,
            out.energy_mj
        );
        if let Some(prev) = &fused {
            let diff = out.image.max_abs_diff(prev);
            assert!(diff < 1e-2, "backends must agree, diff {diff}");
        }
        fused = Some(out.image);
    }
    let fused = fused.expect("at least one backend ran");

    // 4. Quality check: the fused frame carries both sensors' information.
    println!(
        "\nentropy: visible {:.2}, thermal {:.2}, fused {:.2} bits",
        metrics::entropy(&visible),
        metrics::entropy(&thermal),
        metrics::entropy(&fused)
    );
    println!(
        "edge preservation Q^AB/F = {:.3}",
        metrics::petrovic_qabf(&visible, &thermal, &fused)
    );

    // 5. Write the frames for inspection.
    pgm::write_pgm(&visible, "out/quickstart_visible.pgm")?;
    pgm::write_pgm(&thermal, "out/quickstart_thermal.pgm")?;
    pgm::write_pgm(&fused, "out/quickstart_fused.pgm")?;
    println!("\nwrote out/quickstart_{{visible,thermal,fused}}.pgm");
    Ok(())
}

//! Energy/performance design-space exploration around the paper's
//! breaking-point finding.
//!
//! ```text
//! cargo run --release --example energy_explorer
//! ```
//!
//! Sweeps frame sizes to chart where each engine wins, then asks the
//! "what-if" questions the paper's platform fixes: how does the crossover
//! move if the PL clock is faster, or the driver overhead smaller?

use wavefuse::core::cost::{CostModel, TransformPlan};
use wavefuse::core::rules::FusionRule;
use wavefuse::core::Backend;
use wavefuse::power::{ExecutionMode, PowerModel};
use wavefuse::zynq::ZynqConfig;

const LEVELS: usize = 3;
const RULE: FusionRule = FusionRule::WindowEnergy { radius: 1 };

fn crossover_edge(model: &CostModel, power: &PowerModel) -> Option<usize> {
    (24..=128).find(|&e| {
        let plan = TransformPlan::dtcwt(e, e, LEVELS).expect("supported size");
        let t_fpga = model.frame_seconds(&plan, RULE, Backend::Fpga);
        let t_neon = model.frame_seconds(&plan, RULE, Backend::Neon);
        let e_fpga = power.energy_mj(ExecutionMode::ArmFpga, t_fpga);
        let e_neon = power.energy_mj(ExecutionMode::ArmNeon, t_neon);
        e_fpga < e_neon
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CostModel::calibrated();
    let power = PowerModel::zc702();

    println!("energy per fused frame (mJ) across square frame sizes:");
    println!(
        "{:>6} | {:>9} {:>9} {:>9} | winner",
        "edge", "ARM", "NEON", "FPGA"
    );
    for edge in (24..=96).step_by(8) {
        let plan = TransformPlan::dtcwt(edge, edge, LEVELS)?;
        let e =
            |b: Backend| power.energy_mj(b.execution_mode(), model.frame_seconds(&plan, RULE, b));
        let (ea, en, ef) = (e(Backend::Arm), e(Backend::Neon), e(Backend::Fpga));
        let winner = if ef < en && ef < ea {
            "FPGA"
        } else if en < ea {
            "NEON"
        } else {
            "ARM"
        };
        println!("{edge:>4}^2 | {ea:>9.3} {en:>9.3} {ef:>9.3} | {winner}");
    }

    println!(
        "\nbaseline energy breaking point: {:?} (paper: between 40x40 and 64x48)",
        crossover_edge(&model, &power)
    );

    // What-if: PL clock scaling. A faster engine shortens the pipeline
    // phase but not the driver overhead, so the crossover barely moves —
    // the paper's bottleneck diagnosis, quantified.
    println!("\nwhat-if: PL clock frequency");
    for mhz in [50.0, 100.0, 150.0, 200.0] {
        let mut m = CostModel::calibrated();
        m.zynq.pl_clk_hz = mhz * 1e6;
        println!(
            "  PL @ {mhz:>5.0} MHz -> energy crossover {:?}",
            crossover_edge(&m, &power)
        );
    }

    // What-if: driver overhead. Halving the ioctl cost moves the crossover
    // far more — the adaptive scheduler's threshold must be platform-tuned.
    println!("\nwhat-if: per-call driver overhead (forward/inverse PS cycles)");
    let base = ZynqConfig::default();
    for scale in [0.25, 0.5, 1.0, 2.0] {
        let mut m = CostModel::calibrated();
        m.zynq.call_overhead_ps_cycles_forward =
            (base.call_overhead_ps_cycles_forward as f64 * scale) as u64;
        m.zynq.call_overhead_ps_cycles_inverse =
            (base.call_overhead_ps_cycles_inverse as f64 * scale) as u64;
        println!(
            "  {scale:>4.2}x overhead -> energy crossover {:?}",
            crossover_edge(&m, &power)
        );
    }

    // What-if: PL power increment. The 19.2 mW delta is what separates the
    // time and energy breaking points.
    println!("\nwhat-if: PL power increment");
    for inc_mw in [0.0, 19.2, 60.0, 150.0] {
        let p = PowerModel::new(0.533, inc_mw / 1e3);
        println!(
            "  +{inc_mw:>5.1} mW -> energy crossover {:?}",
            crossover_edge(&model, &p)
        );
    }
    Ok(())
}

//! Robust capture: what a deployed fusion camera needs beyond the paper's
//! lab prototype — glitched wires, misaligned mounts and sensor noise —
//! handled by the resilient BT.656 decoder, phase-correlation registration
//! and DT-CWT denoising, end to end.
//!
//! ```text
//! cargo run --release --example robust_capture
//! ```

use wavefuse::core::{Backend, FusionEngine};
use wavefuse::dtcwt::analysis::circular_shift;
use wavefuse::dtcwt::denoise::denoise;
use wavefuse::dtcwt::{Dtcwt, Image};
use wavefuse::metrics::{petrovic_qabf, psnr};
use wavefuse::video::camera::{ThermalCamera, THERMAL_FIELD_DIMS};
use wavefuse::video::register::align_to;
use wavefuse::video::scaler::resize_bilinear;
use wavefuse::video::scene::ScenePair;
use wavefuse::video::{bt656, pgm};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = ScenePair::new(2016);
    let (w, h) = (88, 72);
    let visible = scene.render_visible(w, h, 0.0);

    // 1. A glitched BT.656 field: corrupt three active-line sync words, as
    //    a marginal FMC link would.
    let mut camera = ThermalCamera::new(scene.clone(), w, h);
    let mut stream = camera.next_field_stream();
    let sav_active = bt656::xy_byte(false, false, false);
    let sav_positions: Vec<usize> = stream
        .windows(4)
        .enumerate()
        .filter(|(_, win)| *win == [0xff, 0x00, 0x00, sav_active])
        .map(|(i, _)| i)
        .collect();
    for k in [10usize, 60, 120] {
        stream[sav_positions[k] + 3] = 0x81; // invalid protection bits
    }
    let (fw, fh) = THERMAL_FIELD_DIMS;
    let strict = bt656::decode(&stream, fw, fh);
    println!(
        "strict decoder on the glitched stream: {}",
        match &strict {
            Ok(_) => "accepted (unexpected)".to_string(),
            Err(e) => format!("rejected: {e}"),
        }
    );
    let (raw, report) = bt656::decode_resilient(&stream, fw, fh)?;
    println!(
        "resilient decoder: {} good lines, {} concealed, {} resync bytes",
        report.good_lines, report.concealed_lines, report.resync_bytes
    );
    let thermal_full = raw.to_gray(0);
    let thermal = resize_bilinear(thermal_full.image(), w, h)?;

    // 2. A misaligned mount: the thermal camera is bolted 5 px right,
    //    3 px down of the webcam. Register before fusing.
    let misaligned = circular_shift(&thermal, 5, 3);
    let reference = scene.render_thermal(w, h, 0.0);
    let (registered, t) = align_to(&reference, &misaligned)?;
    println!(
        "registration: estimated shift ({}, {}) with confidence {:.3}",
        t.dx, t.dy, t.confidence
    );

    // 3. Sensor noise: soft-threshold the registered thermal frame.
    let transform = Dtcwt::new(3)?;
    let cleaned = denoise(&transform, &registered, 0.8)?;
    println!(
        "denoise: {:.1} dB -> {:.1} dB against the clean render",
        psnr(&reference, &registered),
        psnr(&reference, &cleaned)
    );

    // 4. Fuse, and compare against fusing the raw damaged stream.
    let mut engine = FusionEngine::new(3)?;
    let robust = engine.fuse(&visible, &cleaned, Backend::Hybrid)?.image;
    let naive = engine.fuse(&visible, &misaligned, Backend::Hybrid)?.image;
    let q = |img: &Image| petrovic_qabf(&visible, &reference, img);
    println!(
        "edge preservation Q^AB/F: naive {:.3} -> robust {:.3}",
        q(&naive),
        q(&robust)
    );

    pgm::write_pgm(&naive, "out/robust_naive.pgm")?;
    pgm::write_pgm(&robust, "out/robust_pipeline.pgm")?;
    println!("wrote out/robust_{{naive,pipeline}}.pgm");
    Ok(())
}

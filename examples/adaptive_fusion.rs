//! The adaptive NEON/FPGA selection study (the paper's §VIII future work).
//!
//! ```text
//! cargo run --release --example adaptive_fusion
//! ```
//!
//! Runs a workload whose frame size varies frame to frame (as happens when
//! the decomposition level or sensor windowing changes) under fixed and
//! adaptive policies, and shows that the adaptive scheduler achieves "the
//! most energy and performance efficient point" the paper predicts.

use wavefuse::core::adaptive::{AdaptiveScheduler, Objective, Policy};
use wavefuse::core::{Backend, FusionEngine};
use wavefuse::video::scene::ScenePair;

const SIZES: [(usize, usize); 5] = [(32, 24), (35, 35), (40, 40), (64, 48), (88, 72)];
const ROUNDS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = ScenePair::new(7);

    // Per-size decisions of the model policy, with predictions.
    let mut sched = AdaptiveScheduler::new(Policy::Model(Objective::Time), 3);
    println!("per-size predictions (ms per fused frame) and decisions:");
    println!("{:>8} | {:>9} {:>9} | decision", "size", "NEON", "FPGA");
    for &(w, h) in &SIZES {
        let neon = sched.predicted_cost(w, h, Backend::Neon, Objective::Time)? * 1e3;
        let fpga = sched.predicted_cost(w, h, Backend::Fpga, Objective::Time)? * 1e3;
        let pick = sched.choose(w, h)?;
        println!(
            "{:>8} | {neon:>9.2} {fpga:>9.2} | {}",
            format!("{w}x{h}"),
            pick.label()
        );
    }
    println!(
        "\nbreaking points: time at {:?}, energy at {:?} (paper: between 40x40 and 64x48)",
        sched.crossover_edge(Objective::Time, 24, 96)?,
        sched.crossover_edge(Objective::Energy, 24, 96)?
    );

    // The mixed workload under four policies.
    let policies: Vec<(&str, Option<Policy>, Option<Backend>)> = vec![
        ("fixed NEON", None, Some(Backend::Neon)),
        ("fixed FPGA", None, Some(Backend::Fpga)),
        (
            "adaptive (model)",
            Some(Policy::Model(Objective::Time)),
            None,
        ),
        (
            "adaptive (online)",
            Some(Policy::Online(Objective::Time)),
            None,
        ),
    ];
    println!(
        "\nmixed workload ({} frames across {} sizes):",
        SIZES.len() * ROUNDS,
        SIZES.len()
    );
    println!(
        "{:>18} | {:>9} | {:>11} | NEON/FPGA",
        "policy", "time (s)", "energy (mJ)"
    );
    for (label, policy, fixed) in policies {
        let mut engine = FusionEngine::new(3)?;
        let mut sched = policy.map(|p| AdaptiveScheduler::new(p, 3));
        let (mut time, mut energy) = (0.0f64, 0.0f64);
        let mut usage = [0u64; 4];
        for round in 0..ROUNDS {
            for &(w, h) in &SIZES {
                let t = round as f64 / 10.0;
                let a = scene.render_visible(w, h, t);
                let b = scene.render_thermal(w, h, t);
                let backend = match (&mut sched, fixed) {
                    (Some(s), _) => s.choose(w, h)?,
                    (_, Some(b)) => b,
                    _ => unreachable!(),
                };
                let out = engine.fuse(&a, &b, backend)?;
                if let Some(s) = &mut sched {
                    s.observe(w, h, backend, out.timing.total_seconds(), out.energy_mj);
                }
                time += out.timing.total_seconds();
                energy += out.energy_mj;
                usage[backend.index()] += 1;
            }
        }
        println!(
            "{label:>18} | {time:>9.4} | {energy:>11.2} | {:>4}/{:<4}",
            usage[1], usage[2]
        );
    }
    Ok(())
}

//! The complete capture-and-fuse system of the paper's Fig. 7:
//! webcam (PS/USB path) + thermal camera (PL path: BT.656 stream over the
//! FMC, sync/blanking decode, 720x243 → target scaling, depth-1 frame
//! gate), fused frame by frame with adaptive backend selection.
//!
//! ```text
//! cargo run --release --example camera_pipeline
//! ```

use wavefuse::core::adaptive::{AdaptiveScheduler, Objective, Policy};
use wavefuse::core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse::video::camera::{ThermalCamera, THERMAL_FIELD_DIMS};
use wavefuse::video::pgm;
use wavefuse::video::scene::ScenePair;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Peek at the raw wire format first: one BT.656 field as the FMC pins
    // would carry it.
    let mut probe = ThermalCamera::new(ScenePair::new(9), 88, 72);
    let stream = probe.next_field_stream();
    let (fw, fh) = THERMAL_FIELD_DIMS;
    println!(
        "thermal wire format: {} bytes per {}x{} BT.656 field (incl. sync + blanking)",
        stream.len(),
        fw,
        fh
    );

    // The full pipeline at the paper's evaluation size, with the run-time
    // NEON/FPGA selection the paper proposes as future work.
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Adaptive(Box::new(AdaptiveScheduler::new(
            Policy::Online(Objective::Energy),
            3,
        ))),
        scene_seed: 9,
        threads: 1,
        depth: 1,
    })?;

    println!("\nframe | backend   | time (ms) | energy (mJ)");
    for i in 0..10 {
        // The thermal camera fields arrive at 60 Hz while fusion runs
        // slower; the gate drops the excess, as in the paper's FIFO.
        let out = pipe.step_with_burst(2)?;
        println!(
            "{i:>5} | {:<9} | {:>9.2} | {:>11.3}",
            out.backend.label(),
            out.timing.total_seconds() * 1e3,
            out.energy_mj
        );
        if i == 9 {
            pgm::write_pgm(&out.image, "out/pipeline_fused_last.pgm")?;
        }
    }

    let stats = pipe.stats();
    println!(
        "\n{} frames fused | {:.3} s modeled | {:.1} mJ | backend usage ARM/NEON/FPGA = {:?}",
        stats.frames,
        stats.timing.total_seconds(),
        stats.energy_mj,
        stats.backend_usage
    );
    println!(
        "thermal fields dropped at the frame gate: {}",
        stats.gate_drops
    );
    println!("wrote out/pipeline_fused_last.pgm");
    Ok(())
}

//! End-to-end telemetry walkthrough: run the instrumented pipeline and
//! export all three formats.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```
//!
//! Writes `telemetry.trace.json` (open in <https://ui.perfetto.dev> or
//! `chrome://tracing`), `telemetry.prom` (Prometheus text exposition) and
//! `telemetry.jsonl` (raw events, one JSON object per line) into the
//! current directory, then prints the headline numbers the trace carries.

use std::sync::Arc;

use wavefuse::core::adaptive::{AdaptiveScheduler, Objective, Policy};
use wavefuse::core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse::core::Backend;
use wavefuse::trace::{export, Telemetry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = Telemetry::shared();

    // The paper's evaluation pipeline, online-adaptive, with a thermal
    // camera that occasionally runs a field ahead (so the frame gate drops).
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Adaptive(Box::new(AdaptiveScheduler::new(
            Policy::Online(Objective::Time),
            3,
        ))),
        scene_seed: 7,
        threads: 1,
        depth: 1,
    })?;
    pipe.set_telemetry(Arc::clone(&telemetry));

    for i in 0..24 {
        pipe.step_with_burst(if i % 6 == 5 { 2 } else { 1 })?;
    }
    let stats = pipe.stats();

    std::fs::write(
        "telemetry.trace.json",
        export::chrome_trace(telemetry.tracer()),
    )?;
    std::fs::write(
        "telemetry.prom",
        export::prometheus_text(telemetry.metrics()),
    )?;
    std::fs::write("telemetry.jsonl", export::jsonl(telemetry.tracer()))?;

    println!(
        "{} frames fused in {:.2} ms modeled time, {:.2} mJ",
        stats.frames,
        stats.timing.total_seconds() * 1e3,
        stats.energy_mj
    );
    println!(
        "backend use ARM/NEON/FPGA/hybrid: {}/{}/{}/{}, gate drops: {}",
        stats.backend_usage[Backend::Arm],
        stats.backend_usage[Backend::Neon],
        stats.backend_usage[Backend::Fpga],
        stats.backend_usage[Backend::Hybrid],
        stats.gate_drops
    );
    println!(
        "{} trace events buffered ({} dropped by the ring)",
        telemetry.tracer().len(),
        telemetry.tracer().dropped()
    );

    // A taste of the Prometheus exposition.
    let prom = export::prometheus_text(telemetry.metrics());
    for line in prom
        .lines()
        .filter(|l| l.starts_with("wavefuse_frames_total"))
    {
        println!("{line}");
    }
    println!("wrote telemetry.trace.json, telemetry.prom, telemetry.jsonl");
    Ok(())
}

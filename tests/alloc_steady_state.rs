//! Allocation-regression tests for the steady-state hot path.
//!
//! A counting global allocator (wrapping the system allocator) tracks
//! heap traffic from the current thread. After a warm-up frame has sized
//! every scratch arena, buffer pool slot, and capture-path plan, the
//! pipeline's `step()` and the pooled transform paths must not allocate
//! at all — the tentpole guarantee of the zero-allocation hot path.
//!
//! The counters are thread-local so the test harness's other threads
//! cannot contaminate a measurement; everything under test runs with
//! `threads = 1`, i.e. on the measuring thread itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Mutex;

use wavefuse_core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse_core::serve::{FleetConfig, StreamConfig, StreamManager};
use wavefuse_core::Backend;
use wavefuse_dtcwt::{
    transpose_bytes_total, ComboStore, CwtPyramid, Dtcwt, Image, ScalarKernel, Scratch,
};
use wavefuse_simd::AutoVecKernel;
use wavefuse_trace::{FlightRecorder, FrameRecord, LogHistogram};
use wavefuse_zynq::FpgaKernel;

/// `transpose_bytes_total()` is a process-wide counter, and the scalar and
/// FPGA kernels legitimately stage transposes. Serializing the tests in
/// this binary keeps each delta measurement attributable to one kernel.
static TRANSPOSE_GATE: Mutex<()> = Mutex::new(());

fn transpose_gate() -> std::sync::MutexGuard<'static, ()> {
    TRANSPOSE_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = BYTES.try_with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = BYTES.try_with(|c| c.set(c.get() + layout.size() as u64));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = BYTES.try_with(|c| c.set(c.get() + new_size as u64));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` and returns `(allocation count, bytes allocated, result)` for
/// the calling thread.
fn counted<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let a0 = ALLOCS.with(Cell::get);
    let b0 = BYTES.with(Cell::get);
    let r = f();
    (ALLOCS.with(Cell::get) - a0, BYTES.with(Cell::get) - b0, r)
}

fn pipeline(backend: Backend) -> VideoFusionPipeline {
    VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Fixed(backend),
        scene_seed: 2016,
        threads: 1,
        depth: 1,
    })
    .expect("default geometry supports three levels")
}

#[test]
fn steady_state_pipeline_steps_do_not_allocate() {
    let _gate = transpose_gate();
    for backend in [Backend::Arm, Backend::Neon] {
        let mut pipe = pipeline(backend);
        // Warm-up: the first frames size the scratch arenas, pool slots,
        // capture plans, and the gate's ping-pong buffers.
        for _ in 0..2 {
            let out = pipe.step().expect("warm-up step");
            pipe.recycle(out);
        }
        let transposed0 = transpose_bytes_total();
        for frame in 2..5 {
            let (allocs, bytes, out) = counted(|| pipe.step().expect("steady step"));
            let (rallocs, rbytes, ()) = counted(|| pipe.recycle(out));
            assert_eq!(
                (allocs, bytes),
                (0, 0),
                "{backend:?} frame {frame}: step() allocated {allocs} times ({bytes} bytes)"
            );
            assert_eq!(
                (rallocs, rbytes),
                (0, 0),
                "{backend:?} frame {frame}: recycle() allocated {rallocs} times ({rbytes} bytes)"
            );
        }
        assert_eq!(pipe.stats().frames, 5);
        // The columnar column passes keep the SIMD backend transpose-free
        // in the steady-state frame loop; the scalar backend still stages
        // its vertical passes through `Image::transpose_into`.
        let transposed = transpose_bytes_total() - transposed0;
        match backend {
            Backend::Neon => assert_eq!(
                transposed, 0,
                "{backend:?}: steady-state frames transposed {transposed} bytes"
            ),
            _ => assert!(
                transposed > 0,
                "{backend:?}: expected the scalar fallback to charge the transpose counter"
            ),
        }
    }
}

// Strip-parallel fusion pops pooled `(re, im)` strip buffers on submit and
// pushes them back on harvest, and the strip map is a reused Vec, so once a
// warm-up frame has sized one buffer pair per ring wave the pooled fusion
// path must stay off the allocator on the dispatcher thread — while still
// actually fanning fusion out as strips (`fusion_strips > 0` in the flight
// recorder proves the fast path ran, not the serial fallback).
#[test]
fn steady_state_strip_fusion_does_not_allocate_on_the_dispatcher() {
    let _gate = transpose_gate();
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Fixed(Backend::Neon),
        scene_seed: 2016,
        threads: 2,
        depth: 1,
    })
    .expect("default geometry supports three levels");
    for _ in 0..3 {
        let out = pipe.step().expect("warm-up step");
        pipe.recycle(out);
    }
    for frame in 3..7 {
        let (allocs, bytes, out) = counted(|| pipe.step().expect("steady step"));
        let (rallocs, rbytes, ()) = counted(|| pipe.recycle(out));
        assert_eq!(
            (allocs, bytes),
            (0, 0),
            "frame {frame}: strip-fused step() allocated {allocs} times ({bytes} bytes)"
        );
        assert_eq!(
            (rallocs, rbytes),
            (0, 0),
            "frame {frame}: recycle() allocated {rallocs} times ({rbytes} bytes)"
        );
    }
    let strip_frames = pipe
        .flight_recorder()
        .iter()
        .filter(|r| r.fusion_strips > 0)
        .count();
    assert_eq!(
        strip_frames,
        pipe.stats().frames as usize,
        "every pooled frame should fuse via row strips"
    );
}

// Depth-k software pipelining keeps several frames in flight across the
// worker pool; the dispatcher thread (the one calling `step()`) must stay
// allocation-free once the prologue has filled the ring and sized every
// per-slot combo store, inverse staging buffer and stash vector. Worker
// threads are not the measuring thread, so the counters pin exactly the
// dispatcher-side guarantee the in-flight ring makes.
#[test]
fn steady_state_depth_k_pipeline_does_not_allocate_on_the_dispatcher() {
    let _gate = transpose_gate();
    for depth in [2usize, 3] {
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (88, 72),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: 2016,
            threads: 2,
            depth,
        })
        .expect("default geometry supports three levels");
        assert_eq!(pipe.depth(), depth);
        // Warm-up: the prologue submits `depth` frames before the first
        // retirement, and the first retired frames size the per-slot
        // buffers, so give every slot one full submit/retire cycle.
        for _ in 0..depth + 2 {
            let out = pipe.step().expect("warm-up step");
            pipe.recycle(out);
        }
        for frame in depth + 2..depth + 6 {
            let (allocs, bytes, out) = counted(|| pipe.step().expect("steady step"));
            let (rallocs, rbytes, ()) = counted(|| pipe.recycle(out));
            assert_eq!(
                (allocs, bytes),
                (0, 0),
                "depth {depth} frame {frame}: step() allocated {allocs} times ({bytes} bytes)"
            );
            assert_eq!(
                (rallocs, rbytes),
                (0, 0),
                "depth {depth} frame {frame}: recycle() allocated {rallocs} times ({rbytes} bytes)"
            );
        }
        assert_eq!(pipe.stats().frames as usize, depth + 6);
    }
}

// `AutoVec` is a kernel, not a pipeline backend, so it is exercised at the
// transform layer: the pooled `_into` analyze/synthesize paths must also be
// allocation-free after one warm-up pass of the same geometry.
#[test]
fn steady_state_transform_paths_do_not_allocate() {
    let _gate = transpose_gate();
    let img = Image::from_fn(88, 72, |x, y| ((x * 31 + y * 17) % 101) as f32 * 0.01);
    let t = Dtcwt::new(3).expect("three levels");

    let mut scalar = ScalarKernel::new();
    let mut autovec = AutoVecKernel::new();
    let kernels: [(&str, &mut dyn wavefuse_dtcwt::FilterKernel); 2] =
        [("scalar", &mut scalar), ("autovec", &mut autovec)];

    for (name, kernel) in kernels {
        let mut combos = ComboStore::new();
        let mut scratch = Scratch::new();
        let mut pyr = CwtPyramid::empty();
        let mut rec = Image::zeros(0, 0);

        // Warm-up pass sizes every staging buffer.
        t.forward_into(kernel, &img, &mut combos, &mut scratch, &mut pyr)
            .expect("warm-up forward");
        t.inverse_into(kernel, &pyr, &mut scratch, &mut rec)
            .expect("warm-up inverse");

        let transposed0 = transpose_bytes_total();
        let (allocs, bytes, ()) = counted(|| {
            for _ in 0..3 {
                t.forward_into(kernel, &img, &mut combos, &mut scratch, &mut pyr)
                    .expect("steady forward");
                t.inverse_into(kernel, &pyr, &mut scratch, &mut rec)
                    .expect("steady inverse");
            }
        });
        assert_eq!(
            (allocs, bytes),
            (0, 0),
            "{name}: pooled transform allocated {allocs} times ({bytes} bytes)"
        );
        // AutoVec rides the columnar column passes and must never touch
        // the transpose staging; the scalar reference keeps using it.
        let transposed = transpose_bytes_total() - transposed0;
        if name == "autovec" {
            assert_eq!(
                transposed, 0,
                "{name}: steady transforms transposed {transposed} bytes"
            );
        } else {
            assert!(
                transposed > 0,
                "{name}: expected transpose staging on the fallback path"
            );
        }
    }
}

// The simulated FPGA path stages rows through the driver's DMA areas and
// the engine's shift register; all of that scratch is persistent, so after
// one warm-up transform (which also sizes the coefficient-shadow copies)
// repeated transforms must stay off the allocator too.
#[test]
fn steady_state_fpga_transform_path_does_not_allocate() {
    let _gate = transpose_gate();
    let img = Image::from_fn(88, 72, |x, y| ((x * 13 + y * 29) % 97) as f32 * 0.02);
    let t = Dtcwt::new(3).expect("three levels");

    let mut fpga = FpgaKernel::new();
    let mut combos = ComboStore::new();
    let mut scratch = Scratch::new();
    let mut pyr = CwtPyramid::empty();
    let mut rec = Image::zeros(0, 0);

    t.forward_into(&mut fpga, &img, &mut combos, &mut scratch, &mut pyr)
        .expect("warm-up forward");
    t.inverse_into(&mut fpga, &pyr, &mut scratch, &mut rec)
        .expect("warm-up inverse");

    let (allocs, bytes, ()) = counted(|| {
        for _ in 0..2 {
            t.forward_into(&mut fpga, &img, &mut combos, &mut scratch, &mut pyr)
                .expect("steady forward");
            t.inverse_into(&mut fpga, &pyr, &mut scratch, &mut rec)
                .expect("steady inverse");
        }
    });
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "fpga: transform allocated {allocs} times ({bytes} bytes)"
    );
}

// Multi-stream serving packs many engines onto one pool from a single
// dispatcher thread. A serving window does a fixed amount of bookkeeping
// allocation (the before-snapshot and the returned per-stream report), but
// none of it may scale with the number of frames served: once the warm-up
// window has sized every engine's buffers and each stream's capture path,
// the per-frame admit/capture/pack/retire cycle must stay off the
// allocator. Windows of different lengths must therefore allocate exactly
// the same amount — any per-frame allocation would separate them.
#[test]
fn steady_state_serving_windows_allocate_independently_of_length() {
    let _gate = transpose_gate();
    let mut mgr = StreamManager::new(FleetConfig {
        threads: 2,
        columnar: true,
        max_in_flight: None,
    });
    for s in 0..3u64 {
        mgr.admit(StreamConfig {
            depth: 1 + (s as usize % 2),
            scene_seed: 2016 + s,
            ..StreamConfig::default()
        })
        .expect("default geometry supports three levels");
    }
    // Warm-up window: fills every stream's pipeline ring, sizes the
    // per-slot stashes, and binds this thread's histogram shards.
    mgr.run(4).expect("warm-up window");

    let (short_allocs, short_bytes, _) = counted(|| mgr.run(2).expect("short window"));
    let (long_allocs, long_bytes, _) = counted(|| mgr.run(9).expect("long window"));
    assert_eq!(
        (short_allocs, short_bytes),
        (long_allocs, long_bytes),
        "serving allocated per frame: 2-frame window {short_allocs} allocs \
         ({short_bytes} B) vs 9-frame window {long_allocs} allocs ({long_bytes} B)"
    );
}

// The flight recorder and the log-bucketed histograms ride along on every
// pipeline step (they are always on), so the pipeline steady-state test
// above already proves they stay off the allocator in situ. This test
// pins the same guarantee on the primitives directly: once constructed,
// observing, querying quantiles, and recording frames must never allocate.
#[test]
fn observability_primitives_do_not_allocate_after_construction() {
    // Construction sizes the sharded counters and the record ring.
    let hist = LogHistogram::with_defaults();
    let mut flight = FlightRecorder::new(64);
    // One warm-up observation binds this thread's shard ordinal.
    hist.observe(1.0);
    flight.record(FrameRecord::default());

    let (allocs, bytes, ()) = counted(|| {
        for i in 0..1000u64 {
            hist.observe(1e-5 * (i + 1) as f64);
            flight.record(FrameRecord {
                frame: i,
                energy_mj: i as f64 * 0.25,
                ..FrameRecord::default()
            });
        }
        // Quantile/aggregate queries merge the shards in place.
        assert!(hist.quantile(0.5) > 0.0);
        assert!(hist.quantile(0.99) >= hist.quantile(0.5));
        assert!(hist.max() > 0.0);
        assert!(hist.sum() > 0.0);
        assert_eq!(hist.count(), 1001);
        // The ring wrapped several times and kept the newest records.
        assert!(flight.wrapped());
        assert_eq!(flight.len(), 64);
        assert_eq!(flight.iter().last().expect("newest").frame, 999);
    });
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "observability primitives allocated {allocs} times ({bytes} bytes)"
    );
}

//! End-user tests of the `wavefuse` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn wavefuse() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wavefuse"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wavefuse-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&p).expect("temp dir");
    p
}

#[test]
fn demo_fuse_denoise_round_trip() {
    let dir = tmp_dir("roundtrip");
    // 1. demo produces frame triples.
    let out = wavefuse()
        .args([
            "demo",
            "-o",
            dir.to_str().unwrap(),
            "--frames",
            "2",
            "--size",
            "48x40",
            "--seed",
            "7",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let vis = dir.join("demo_000_visible.pgm");
    let ir = dir.join("demo_000_thermal.pgm");
    assert!(vis.exists() && ir.exists());

    // 2. fuse them on every backend spelling.
    for backend in ["arm", "neon", "fpga", "hybrid", "auto"] {
        let fused = dir.join(format!("fused_{backend}.pgm"));
        let out = wavefuse()
            .args([
                "fuse",
                vis.to_str().unwrap(),
                ir.to_str().unwrap(),
                "-o",
                fused.to_str().unwrap(),
                "--backend",
                backend,
                "--rule",
                "activity",
            ])
            .output()
            .expect("spawn");
        assert!(
            out.status.success(),
            "{backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(fused.exists());
    }

    // 3. denoise one of the frames.
    let den = dir.join("denoised.pgm");
    let out = wavefuse()
        .args([
            "denoise",
            ir.to_str().unwrap(),
            "-o",
            den.to_str().unwrap(),
            "--strength",
            "0.8",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The denoised PGM parses and matches the source geometry.
    let img = wavefuse_video::pgm::read_pgm(&den).expect("valid pgm");
    assert_eq!(img.dims(), (48, 40));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_usage() {
    // No arguments: usage + exit code 2.
    let out = wavefuse().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown command.
    let out = wavefuse().arg("explode").output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));

    // Missing input file.
    let out = wavefuse()
        .args([
            "fuse",
            "/nonexistent/a.pgm",
            "/nonexistent/b.pgm",
            "-o",
            "/tmp/x.pgm",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());

    // Bad backend name.
    let dir = tmp_dir("badargs");
    let img = dir.join("a.pgm");
    wavefuse_video::pgm::write_pgm(&wavefuse_dtcwt::Image::filled(16, 16, 0.5), &img).unwrap();
    let out = wavefuse()
        .args([
            "fuse",
            img.to_str().unwrap(),
            img.to_str().unwrap(),
            "-o",
            dir.join("o.pgm").to_str().unwrap(),
            "--backend",
            "gpu",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown backend"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_mismatched_inputs_and_depths() {
    let dir = tmp_dir("mismatch");
    let a = dir.join("a.pgm");
    let b = dir.join("b.pgm");
    wavefuse_video::pgm::write_pgm(&wavefuse_dtcwt::Image::filled(16, 16, 0.5), &a).unwrap();
    wavefuse_video::pgm::write_pgm(&wavefuse_dtcwt::Image::filled(24, 16, 0.5), &b).unwrap();
    let out = wavefuse()
        .args([
            "fuse",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "-o",
            dir.join("o.pgm").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("differ in size"));

    // Unsupportable decomposition depth for a tiny image.
    let out = wavefuse()
        .args([
            "fuse",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
            "-o",
            dir.join("o.pgm").to_str().unwrap(),
            "--levels",
            "9",
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--levels"));
    std::fs::remove_dir_all(&dir).ok();
}

//! The acceptance test of the reproduction: every quantitative claim of
//! the paper's §VII must hold, within documented tolerance bands, for the
//! numbers this implementation *actually produces* (real transforms, the
//! FPGA path timed by the cycle-level simulator's ledger).
//!
//! Absolute seconds/millijoules are modeled, so the assertions target the
//! paper's *ratios, orderings and crossover intervals* — the reproducible
//! shape of the result. See `EXPERIMENTS.md` for the full side-by-side.

use wavefuse_core::{Backend, FusionEngine};
use wavefuse_dtcwt::Image;
use wavefuse_power::{ExecutionMode, PowerModel};

/// Tolerance (absolute, in ratio points) on the paper's enhancement ratios.
const RATIO_TOL: f64 = 0.06;

fn scene_inputs(w: usize, h: usize) -> (Image, Image) {
    let scene = wavefuse_video::scene::ScenePair::new(2016);
    (
        scene.render_visible(w, h, 0.0),
        scene.render_thermal(w, h, 0.0),
    )
}

struct Cell {
    forward: f64,
    inverse: f64,
    total: f64,
    energy: f64,
}

fn run_cell(engine: &mut FusionEngine, w: usize, h: usize, backend: Backend) -> Cell {
    let (a, b) = scene_inputs(w, h);
    let out = engine.fuse(&a, &b, backend).expect("fusion succeeds");
    Cell {
        forward: out.timing.forward_s,
        inverse: out.timing.inverse_s,
        total: out.timing.total_seconds(),
        energy: out.energy_mj,
    }
}

#[test]
fn headline_ratios_at_full_frame_size() {
    let mut engine = FusionEngine::new(3).unwrap();
    let arm = run_cell(&mut engine, 88, 72, Backend::Arm);
    let neon = run_cell(&mut engine, 88, 72, Backend::Neon);
    let fpga = run_cell(&mut engine, 88, 72, Backend::Fpga);

    // Paper: forward enhancement 55.6 % (FPGA), 10 % (NEON).
    let fwd_fpga = fpga.forward / arm.forward;
    let fwd_neon = neon.forward / arm.forward;
    assert!(
        (fwd_fpga - 0.444).abs() < RATIO_TOL,
        "forward FPGA/ARM {fwd_fpga:.3} vs paper 0.444"
    );
    assert!(
        (fwd_neon - 0.90).abs() < RATIO_TOL,
        "forward NEON/ARM {fwd_neon:.3} vs paper 0.90"
    );

    // Paper: inverse enhancement 60.6 % (FPGA), 16 % (NEON).
    let inv_fpga = fpga.inverse / arm.inverse;
    let inv_neon = neon.inverse / arm.inverse;
    assert!(
        (inv_fpga - 0.394).abs() < RATIO_TOL,
        "inverse FPGA/ARM {inv_fpga:.3} vs paper 0.394"
    );
    assert!(
        (inv_neon - 0.84).abs() < RATIO_TOL,
        "inverse NEON/ARM {inv_neon:.3} vs paper 0.84"
    );

    // Paper: total enhancement 48.1 % (FPGA), 8 % (NEON).
    let tot_fpga = fpga.total / arm.total;
    let tot_neon = neon.total / arm.total;
    assert!(
        (tot_fpga - 0.519).abs() < RATIO_TOL,
        "total FPGA/ARM {tot_fpga:.3} vs paper 0.519"
    );
    assert!(
        (tot_neon - 0.92).abs() < RATIO_TOL,
        "total NEON/ARM {tot_neon:.3} vs paper 0.92"
    );

    // Paper: energy savings 46.3 % (FPGA), 8 % (NEON).
    let e_fpga = fpga.energy / arm.energy;
    let e_neon = neon.energy / arm.energy;
    assert!(
        (e_fpga - 0.537).abs() < RATIO_TOL,
        "energy FPGA/ARM {e_fpga:.3} vs paper 0.537"
    );
    assert!(
        (e_neon - 0.92).abs() < RATIO_TOL,
        "energy NEON/ARM {e_neon:.3} vs paper 0.92"
    );

    // "The accelerated system reduces computation time and energy by a
    // factor of 2" (abstract): the FPGA roughly halves both.
    assert!(tot_fpga < 0.60 && e_fpga < 0.62);
}

#[test]
fn small_frames_prefer_neon() {
    let mut engine = FusionEngine::new(3).unwrap();
    let arm = run_cell(&mut engine, 32, 24, Backend::Arm);
    let neon = run_cell(&mut engine, 32, 24, Backend::Neon);
    let fpga = run_cell(&mut engine, 32, 24, Backend::Fpga);

    // Paper: at 32x24 the FPGA forward is 36.4 % slower than NEON's and
    // slower than the plain ARM.
    let degradation = fpga.forward / neon.forward - 1.0;
    assert!(
        (degradation - 0.364).abs() < 0.10,
        "32x24 forward degradation {:.1} % vs paper 36.4 %",
        degradation * 100.0
    );
    assert!(
        fpga.forward > arm.forward,
        "FPGA forward must lose to plain ARM at 32x24"
    );
    // And energy follows: the FPGA is the worst choice at this size.
    assert!(fpga.energy > neon.energy && fpga.energy > arm.energy);
}

#[test]
fn breaking_points_lie_in_paper_intervals() {
    let report = wavefuse_bench::experiments::crossover_report().unwrap();
    let fwd = report.forward_edge.expect("forward crossover exists");
    assert!(
        fwd > 35 && fwd <= 40,
        "forward breaking point {fwd} not in (35, 40]"
    );
    let inv = report.inverse_edge.expect("inverse crossover exists");
    assert!(
        inv > 40 && inv <= 64,
        "inverse breaking point {inv} not in (40, 64]"
    );
    let total = report.total_edge.expect("total crossover exists");
    assert!(
        total > 40 && total <= 64,
        "total breaking point {total} not in (40, 64]"
    );
    let energy = report.energy_edge.expect("energy crossover exists");
    assert!(
        energy > 40 && energy <= 64,
        "energy breaking point {energy} not in (40, 64]"
    );
    assert!(
        energy >= total,
        "energy crossover cannot precede the time crossover"
    );
}

#[test]
fn monotone_advantage_above_the_breaking_point() {
    // Paper: "starting from the breaking point, the larger the frame size
    // to be fused, the more energy efficient is the ARM+FPGA processing
    // mode."
    let mut engine = FusionEngine::new(3).unwrap();
    let mut prev_ratio = f64::MAX;
    for (w, h) in [(64, 48), (88, 72), (128, 96)] {
        let neon = run_cell(&mut engine, w, h, Backend::Neon);
        let fpga = run_cell(&mut engine, w, h, Backend::Fpga);
        let ratio = fpga.energy / neon.energy;
        assert!(ratio < 1.0, "{w}x{h}: FPGA must be more efficient");
        assert!(
            ratio < prev_ratio,
            "{w}x{h}: advantage must grow with size ({ratio:.3} vs {prev_ratio:.3})"
        );
        prev_ratio = ratio;
    }
}

#[test]
fn power_model_matches_paper_measurements() {
    let pm = PowerModel::zc702();
    // "fusing using ARM+FPGA consumes 3.6 % more power (19.2 mW)".
    let arm = pm.power_w(ExecutionMode::ArmOnly);
    let fpga = pm.power_w(ExecutionMode::ArmFpga);
    assert!((fpga - arm - 0.0192).abs() < 1e-12);
    assert!(((fpga / arm - 1.0) * 100.0 - 3.6).abs() < 0.05);
    // "Fusing using only the ARM processor consumes approximately the same
    // power as using ARM+NEON."
    assert_eq!(arm, pm.power_w(ExecutionMode::ArmNeon));
}

#[test]
fn profile_finds_transforms_dominant() {
    // Fig. 2: the forward and inverse DT-CWT are the most compute-intensive
    // tasks of the fusion process.
    let phases = wavefuse_bench::experiments::fig2_profile().unwrap();
    let pct = |name: &str| {
        phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
            .expect("phase present")
    };
    let fwd = pct("forward dt-cwt");
    let inv = pct("inverse dt-cwt");
    assert!(fwd > inv, "forward must be the single largest phase");
    assert!(fwd + inv > 60.0);
    for (name, p) in &phases {
        if !name.contains("dt-cwt") {
            assert!(*p < inv, "{name} ({p:.1} %) must trail the transforms");
        }
    }
}

#[test]
fn table1_reproduced_exactly() {
    let rows = wavefuse_bench::experiments::table1_resources(12);
    let expect = [
        ("Registers", 23_412u64, 106_400u64),
        ("LUTs", 17_405, 53_200),
        ("Slices", 7_890, 13_300),
        ("BUFG", 3, 32),
    ];
    for (row, (name, used, avail)) in rows.iter().zip(expect) {
        assert_eq!(row.resource, name);
        assert_eq!(row.used, used, "{name}");
        assert_eq!(row.available, avail, "{name}");
    }
}

#[test]
fn adaptive_system_achieves_the_most_efficient_point() {
    // The paper's conclusion: "an adaptive system that intelligently
    // selects between the SIMD engine and the FPGA achieves the most
    // energy and performance efficiency point."
    let outcomes = wavefuse_bench::experiments::adaptive_comparison().unwrap();
    let get = |label: &str| {
        outcomes
            .iter()
            .find(|o| o.policy.starts_with(label))
            .expect("policy present")
    };
    let best_fixed_time = get("fixed NEON").total_s.min(get("fixed FPGA").total_s);
    let best_fixed_energy = get("fixed NEON").energy_mj.min(get("fixed FPGA").energy_mj);
    let model = get("adaptive (model, time)");
    assert!(model.total_s <= best_fixed_time + 1e-9);
    let model_e = get("adaptive (model, energy)");
    assert!(model_e.energy_mj <= best_fixed_energy + 1e-9);
}

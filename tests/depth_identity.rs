//! Depth-k pipelining must change the schedule, never the pixels.
//!
//! The in-flight ring overlaps capture of frame N+k with the transform of
//! frames N..N+k-1, but capture ordering, fusion arithmetic and the
//! combo-order inverse accumulation are all schedule-invariant, so every
//! (depth, threads, frame size) cell must reproduce the serial pipeline's
//! output stream bit for bit — and the modeled per-frame statistics too,
//! since the cost model is a function of the work, not the schedule.

use wavefuse_core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse_core::Backend;
use wavefuse_dtcwt::Image;

fn pipeline(
    size: (usize, usize),
    backend: Backend,
    threads: usize,
    depth: usize,
) -> VideoFusionPipeline {
    VideoFusionPipeline::new(PipelineConfig {
        frame_size: size,
        levels: 3,
        backend: BackendChoice::Fixed(backend),
        scene_seed: 2016,
        threads,
        depth,
    })
    .expect("geometry supports three levels")
}

fn fused_frames(
    size: (usize, usize),
    backend: Backend,
    threads: usize,
    depth: usize,
    n: usize,
) -> Vec<Image> {
    let mut pipe = pipeline(size, backend, threads, depth);
    let frames = (0..n).map(|_| pipe.step().expect("step").image).collect();
    // The effective depth must follow the degrade rule: full depth on a
    // pooled CPU backend, 1 otherwise.
    let expect = if threads > 1 { depth.max(1) } else { 1 };
    assert_eq!(pipe.depth(), expect, "size {size:?} threads {threads}");
    frames
}

fn assert_depth_matrix_matches_serial(size: (usize, usize), backend: Backend, n: usize) {
    let serial = fused_frames(size, backend, 1, 1, n);
    for depth in [1usize, 2, 3] {
        for threads in [1usize, 2, 4] {
            let piped = fused_frames(size, backend, threads, depth, n);
            for (i, (a, b)) in serial.iter().zip(&piped).enumerate() {
                assert_eq!(
                    a, b,
                    "{backend:?} {}x{} frame {i}: depth {depth} x {threads} threads \
                     diverged from serial",
                    size.0, size.1
                );
            }
        }
    }
}

#[test]
fn depth_matrix_is_bit_identical_at_88x72() {
    assert_depth_matrix_matches_serial((88, 72), Backend::Neon, 6);
    assert_depth_matrix_matches_serial((88, 72), Backend::Arm, 4);
}

#[test]
fn depth_matrix_is_bit_identical_at_96x80() {
    assert_depth_matrix_matches_serial((96, 80), Backend::Neon, 5);
}

// VGA frames are ~48x the default pixel count; the full matrix is release
// material (ci.sh runs it with --include-ignored), not debug-profile
// material.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "VGA identity matrix is too slow in debug builds; ci.sh runs it in release"
)]
fn depth_matrix_is_bit_identical_at_640x480() {
    assert_depth_matrix_matches_serial((640, 480), Backend::Neon, 3);
}

#[test]
fn depth_k_statistics_match_serial() {
    // The modeled timing/energy accounting retires with the frame, so the
    // aggregate statistics of a depth-3 run must equal the serial run's.
    let mut serial = pipeline((88, 72), Backend::Neon, 1, 1);
    let mut deep = pipeline((88, 72), Backend::Neon, 2, 3);
    for _ in 0..6 {
        let a = serial.step().expect("serial step");
        serial.recycle(a);
        let b = deep.step().expect("deep step");
        deep.recycle(b);
    }
    let (s, d) = (serial.stats(), deep.stats());
    assert_eq!(s.frames, d.frames);
    assert_eq!(s.energy_mj.to_bits(), d.energy_mj.to_bits());
    assert_eq!(
        s.timing.total_seconds().to_bits(),
        d.timing.total_seconds().to_bits()
    );
    // And the flight recorder labels every frame with its ring slot.
    for rec in deep.flight_recorder().iter() {
        assert_eq!(rec.depth, 3);
        assert!((0..3).contains(&rec.slot), "slot {}", rec.slot);
    }
}

//! Fleet backpressure: oversubscribing the shared ring must degrade by
//! dropping the oldest frames — never by deadlocking, losing accounting,
//! or charging a drop to the wrong stream.

use wavefuse_core::serve::{solo_digest, FleetConfig, StreamConfig, StreamManager};

const ROUNDS: usize = 6;

#[test]
fn oversubscribed_fleet_never_deadlocks_and_accounts_every_frame() {
    // Twelve pipelined streams against a fleet cap of four keeps the ring
    // permanently oversubscribed: every round must still terminate, and
    // every captured frame must show up as exactly one delivery or one
    // drop on its own stream.
    for threads in [1, 2, 4] {
        let mut mgr = StreamManager::new(FleetConfig {
            threads,
            columnar: true,
            max_in_flight: Some(4),
        });
        for s in 0..12 {
            mgr.admit(StreamConfig {
                frame_size: if s % 3 == 0 { (64, 48) } else { (48, 40) },
                depth: 2,
                scene_seed: s as u64,
                ..StreamConfig::default()
            })
            .unwrap();
        }
        let report = mgr.run(ROUNDS).unwrap();
        assert!(
            report.total_drops > 0,
            "a 24-deep demand against a cap of 4 must force drops ({threads} threads)"
        );
        let mut frames = 0;
        let mut drops = 0;
        for s in &report.per_stream {
            assert_eq!(
                s.frames + s.drops,
                ROUNDS as u64,
                "stream {}: every captured frame is delivered or dropped",
                s.stream
            );
            assert_eq!(s.frames, mgr.stream_frames(s.stream));
            assert_eq!(s.drops, mgr.stream_drops(s.stream));
            frames += s.frames;
            drops += s.drops;
        }
        assert_eq!(frames, report.total_frames);
        assert_eq!(drops, report.total_drops);
        assert_eq!(frames + drops, (12 * ROUNDS) as u64);
    }
}

#[test]
fn drops_land_on_the_stream_holding_the_oldest_frames() {
    // One deep stream (depth 4) next to two shallow ones under a cap of 3:
    // the shallow streams retire their single pending frame before each
    // capture, so the globally oldest pending frame — the eviction victim —
    // always belongs to the deep stream. Its neighbors must come through
    // drop-free and bit-identical to running alone.
    for threads in [1, 2, 4] {
        let mut mgr = StreamManager::new(FleetConfig {
            threads,
            columnar: true,
            max_in_flight: Some(3),
        });
        mgr.set_digests(true);
        let deep = mgr
            .admit(StreamConfig {
                depth: 4,
                scene_seed: 100,
                ..StreamConfig::default()
            })
            .unwrap();
        let shallow: Vec<StreamConfig> = (0..2)
            .map(|s| StreamConfig {
                scene_seed: 200 + s,
                ..StreamConfig::default()
            })
            .collect();
        let shallow_ids: Vec<usize> = shallow.iter().map(|cfg| mgr.admit(*cfg).unwrap()).collect();

        let report = mgr.run(ROUNDS).unwrap();
        assert!(
            mgr.stream_drops(deep) > 0,
            "the deep stream owns the oldest frames ({threads} threads)"
        );
        assert_eq!(
            mgr.stream_frames(deep) + mgr.stream_drops(deep),
            ROUNDS as u64
        );
        for (cfg, &id) in shallow.iter().zip(&shallow_ids) {
            assert_eq!(mgr.stream_drops(id), 0, "shallow stream {id} dropped");
            assert_eq!(mgr.stream_frames(id), ROUNDS as u64);
            assert_eq!(
                mgr.stream_digest(id),
                solo_digest(cfg, true, ROUNDS).unwrap(),
                "stream {id} pixels changed under a neighbor's backpressure"
            );
        }
        assert_eq!(report.total_drops, mgr.stream_drops(deep));
    }
}

#[test]
fn uncapped_fleet_reports_no_drops() {
    // Without a fleet cap the per-stream depth is the only backpressure:
    // nothing is ever dropped, whatever the oversubscription.
    let mut mgr = StreamManager::new(FleetConfig {
        threads: 2,
        columnar: true,
        max_in_flight: None,
    });
    for s in 0..8 {
        mgr.admit(StreamConfig {
            depth: 1 + (s % 3),
            scene_seed: s as u64,
            ..StreamConfig::default()
        })
        .unwrap();
    }
    let report = mgr.run(ROUNDS).unwrap();
    assert_eq!(report.total_drops, 0);
    assert_eq!(report.total_frames, (8 * ROUNDS) as u64);
}

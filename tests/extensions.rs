//! Cross-crate integration tests for the features this reproduction adds
//! beyond the paper: the hybrid backend, the QoS governor,
//! registration-before-fusion, and denoising in the capture path.

use wavefuse_core::adaptive::Objective;
use wavefuse_core::governor::QosGovernor;
use wavefuse_core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse_core::{Backend, FusionEngine};
use wavefuse_dtcwt::analysis::circular_shift;
use wavefuse_dtcwt::denoise::denoise;
use wavefuse_dtcwt::swt::Swt2d;
use wavefuse_dtcwt::{Dtcwt, FilterBank, Image};
use wavefuse_metrics::{petrovic_qabf, psnr};
use wavefuse_video::register::align_to;
use wavefuse_video::scene::ScenePair;

fn scene_pair(w: usize, h: usize) -> (Image, Image) {
    let scene = ScenePair::new(99);
    (
        scene.render_visible(w, h, 0.0),
        scene.render_thermal(w, h, 0.0),
    )
}

#[test]
fn hybrid_backend_runs_in_the_full_pipeline() {
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Fixed(Backend::Hybrid),
        scene_seed: 4,
        threads: 1,
        depth: 1,
    })
    .unwrap();
    let stats = pipe.run(3).unwrap();
    assert_eq!(stats.backend_usage, [0, 0, 0, 3]);
    // Hybrid timing sits at or below the pure FPGA's for the same workload.
    let mut fpga = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Fixed(Backend::Fpga),
        scene_seed: 4,
        threads: 1,
        depth: 1,
    })
    .unwrap();
    let fpga_stats = fpga.run(3).unwrap();
    assert!(stats.timing.total_seconds() < fpga_stats.timing.total_seconds());
}

#[test]
fn governor_operating_point_is_achievable_by_the_engine() {
    // The governor's prediction must match what the engine then actually
    // charges for the chosen configuration.
    let gov = QosGovernor::new(4);
    let decision = gov.decide(64, 48, 12.0).unwrap().expect("feasible");
    let (a, b) = scene_pair(64, 48);
    let mut engine = FusionEngine::new(decision.levels).unwrap();
    let out = engine.fuse(&a, &b, decision.backend).unwrap();
    let measured = out.timing.total_seconds();
    assert!(
        (measured - decision.predicted_seconds).abs() < 0.05 * decision.predicted_seconds,
        "predicted {} vs measured {measured}",
        decision.predicted_seconds
    );
    assert!(measured <= 1.0 / 12.0 * 1.05, "deadline met");
}

#[test]
fn governor_tracks_the_platform_ceiling() {
    let gov = QosGovernor::new(3);
    let ceiling = gov.max_fps(88, 72, Objective::Time).unwrap();
    // Just below the ceiling is feasible, just above is not.
    assert!(gov.decide(88, 72, ceiling * 0.95).unwrap().is_some());
    assert!(gov.decide(88, 72, ceiling * 1.10).unwrap().is_none());
}

#[test]
fn registration_before_fusion_recovers_misalignment() {
    // Misaligned sensors: fusing directly ghosts the edges; registering
    // the thermal frame first restores the aligned fusion result.
    let (vis, ir) = scene_pair(64, 64);
    let mut engine = FusionEngine::new(3).unwrap();
    let aligned_ref = engine.fuse(&vis, &ir, Backend::Neon).unwrap().image;

    let ir_misaligned = circular_shift(&ir, 6, -4);
    let naive = engine
        .fuse(&vis, &ir_misaligned, Backend::Neon)
        .unwrap()
        .image;

    let (ir_registered, t) = align_to(&ir, &ir_misaligned).unwrap();
    assert_eq!((t.dx, t.dy), (6, -4));
    let registered = engine
        .fuse(&vis, &ir_registered, Backend::Neon)
        .unwrap()
        .image;

    let q_naive = petrovic_qabf(&vis, &ir, &naive);
    let q_registered = petrovic_qabf(&vis, &ir, &registered);
    assert!(
        q_registered > q_naive + 0.02,
        "registered {q_registered:.3} vs naive {q_naive:.3}"
    );
    assert!(registered.max_abs_diff(&aligned_ref) < 1e-3);
}

#[test]
fn denoising_the_thermal_stream_before_fusion_helps() {
    let (vis, ir) = scene_pair(64, 64);
    // Heavy extra sensor noise on the thermal channel.
    let noisy_ir = Image::from_fn(64, 64, |x, y| {
        let h = (x as u32)
            .wrapping_mul(0x9e3779b9)
            .wrapping_add((y as u32).wrapping_mul(0x85ebca6b));
        ir.get(x, y) + ((h >> 9) as f32 / (1u32 << 23) as f32 - 0.5) * 0.25
    });
    let t = Dtcwt::new(3).unwrap();
    let cleaned = denoise(&t, &noisy_ir, 1.0).unwrap();
    assert!(
        psnr(&ir, &cleaned) > psnr(&ir, &noisy_ir) + 2.0,
        "denoise gains >2 dB"
    );

    let mut engine = FusionEngine::new(3).unwrap();
    let fused_noisy = engine.fuse(&vis, &noisy_ir, Backend::Neon).unwrap().image;
    let fused_clean = engine.fuse(&vis, &cleaned, Backend::Neon).unwrap().image;
    let reference = engine.fuse(&vis, &ir, Backend::Neon).unwrap().image;
    assert!(
        psnr(&reference, &fused_clean) > psnr(&reference, &fused_noisy) + 2.0,
        "denoised-stream fusion is closer to the clean fusion"
    );
}

#[test]
fn swt_and_dtcwt_agree_on_what_matters() {
    // The SWT (exactly shift-invariant, expensive) and the DT-CWT
    // (approximately shift-invariant, cheap) produce closely comparable
    // fusions, while the MAC bill differs by several times.
    let (a, b) = scene_pair(88, 72);
    let mut engine = FusionEngine::new(3).unwrap();
    let dtcwt_img = engine.fuse(&a, &b, Backend::Neon).unwrap().image;
    let swt_img =
        wavefuse_core::baseline::swt_fusion(&a, &b, FilterBank::cdf_9_7().unwrap(), 3).unwrap();
    let q_dtcwt = petrovic_qabf(&a, &b, &dtcwt_img);
    let q_swt = petrovic_qabf(&a, &b, &swt_img);
    assert!((q_dtcwt - q_swt).abs() < 0.08, "{q_dtcwt} vs {q_swt}");

    let swt = Swt2d::new(FilterBank::near_sym_b().unwrap(), 3).unwrap();
    let swt_macs = swt.forward_macs(88, 72);
    let plan = wavefuse_core::cost::TransformPlan::dtcwt(88, 72, 3).unwrap();
    // ~1.8x the MACs at 3 levels — and the gap grows linearly with depth
    // (the SWT has no geometric decay), plus 2.5x the memory footprint.
    assert!(
        swt_macs as f64 > 1.5 * plan.forward_macs() as f64,
        "swt {} vs dt-cwt {}",
        swt_macs,
        plan.forward_macs()
    );
    let deep_swt = Swt2d::new(FilterBank::near_sym_b().unwrap(), 5)
        .unwrap()
        .forward_macs(88, 72);
    let deep_plan = wavefuse_core::cost::TransformPlan::dtcwt(88, 72, 5).unwrap();
    assert!(
        deep_swt as f64 > 2.5 * deep_plan.forward_macs() as f64,
        "the gap widens with depth: {} vs {}",
        deep_swt,
        deep_plan.forward_macs()
    );
}

#[test]
fn parallel_transform_is_a_drop_in_replacement() {
    let (a, _) = scene_pair(88, 72);
    let t = Dtcwt::new(3).unwrap();
    let serial = t.forward(&a).unwrap();
    let parallel = t
        .forward_parallel(wavefuse_simd::SimdKernel::new, &a)
        .unwrap();
    for level in 0..3 {
        for (x, y) in serial.subbands(level).iter().zip(parallel.subbands(level)) {
            assert!(x.re.max_abs_diff(&y.re) < 1e-3);
        }
    }
}

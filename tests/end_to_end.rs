//! End-to-end pipeline tests: the full capture → BT.656 decode → scale →
//! gate → decompose → fuse → reconstruct path of the paper's Fig. 7, across
//! crates.

use wavefuse_core::adaptive::{AdaptiveScheduler, Objective, Policy};
use wavefuse_core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse_core::Backend;
use wavefuse_video::bt656;
use wavefuse_video::camera::{ThermalCamera, THERMAL_FIELD_DIMS};
use wavefuse_video::scaler::resize_bilinear;
use wavefuse_video::scene::ScenePair;

#[test]
fn full_capture_path_produces_fused_video() {
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Fixed(Backend::Fpga),
        scene_seed: 42,
        threads: 1,
        depth: 1,
    })
    .unwrap();
    let stats = pipe.run(5).unwrap();
    assert_eq!(stats.frames, 5);
    assert_eq!(stats.backend_usage, [0, 0, 5, 0]);
    // Energy accounting is consistent with the FPGA power mode.
    let p_fpga = pipe
        .engine()
        .power_model()
        .power_w(wavefuse_power::ExecutionMode::ArmFpga);
    let implied_energy = stats.timing.total_seconds() * p_fpga * 1e3;
    assert!((stats.energy_mj - implied_energy).abs() < 1e-9);
}

#[test]
fn pipeline_is_deterministic_for_a_seed() {
    let run = |seed: u64| {
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (48, 40),
            levels: 3,
            backend: BackendChoice::Fixed(Backend::Neon),
            scene_seed: seed,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        let out = pipe.step().unwrap();
        out.image
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a, b, "same seed, same fused frame");
    assert!(a.max_abs_diff(&c) > 1e-4, "different seed, different frame");
}

#[test]
fn manual_capture_path_equals_camera_shortcut() {
    // Decoding the camera's own BT.656 stream by hand must give the same
    // frame the camera's capture() returns.
    let scene = ScenePair::new(5);
    let mut cam_a = ThermalCamera::new(scene.clone(), 88, 72);
    let mut cam_b = ThermalCamera::new(scene, 88, 72);

    let stream = cam_a.next_field_stream();
    let (fw, fh) = THERMAL_FIELD_DIMS;
    let raw = bt656::decode(&stream, fw, fh).unwrap();
    let gray = raw.to_gray(0);
    let manual = resize_bilinear(gray.image(), 88, 72).unwrap();

    let auto = cam_b.capture().unwrap();
    assert_eq!(manual, *auto.image());
}

#[test]
fn adaptive_pipeline_reacts_to_frame_size() {
    for ((w, h), expect_fpga) in [((88, 72), true), ((32, 24), false)] {
        let mut pipe = VideoFusionPipeline::new(PipelineConfig {
            frame_size: (w, h),
            levels: 3,
            backend: BackendChoice::Adaptive(Box::new(AdaptiveScheduler::new(
                Policy::Model(Objective::Energy),
                3,
            ))),
            scene_seed: 1,
            threads: 1,
            depth: 1,
        })
        .unwrap();
        let stats = pipe.run(3).unwrap();
        if expect_fpga {
            assert_eq!(
                stats.backend_usage[Backend::Fpga],
                3,
                "{w}x{h} should use the FPGA"
            );
        } else {
            assert_eq!(
                stats.backend_usage[Backend::Neon],
                3,
                "{w}x{h} should use NEON"
            );
        }
    }
}

#[test]
fn online_policy_converges_in_the_pipeline() {
    // The online scheduler explores both accelerators, then settles on the
    // right one for the size.
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Adaptive(Box::new(AdaptiveScheduler::new(
            Policy::Online(Objective::Time),
            3,
        ))),
        scene_seed: 2,
        threads: 1,
        depth: 1,
    })
    .unwrap();
    let stats = pipe.run(6).unwrap();
    // One exploration frame each, then four exploitation frames on FPGA.
    assert_eq!(
        stats.backend_usage[Backend::Neon],
        1,
        "one NEON exploration"
    );
    assert_eq!(stats.backend_usage[Backend::Fpga], 5, "FPGA wins at 88x72");
}

#[test]
fn fused_stream_tracks_the_moving_body() {
    // Over time the warm body moves; the fused video must move with it.
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (64, 48),
        levels: 2,
        backend: BackendChoice::Fixed(Backend::Neon),
        scene_seed: 11,
        threads: 1,
        depth: 1,
    })
    .unwrap();
    let first = pipe.step().unwrap().image;
    for _ in 0..30 {
        pipe.step().unwrap();
    }
    let later = pipe.step().unwrap().image;
    assert!(
        first.max_abs_diff(&later) > 0.05,
        "scene motion must appear in the fused stream"
    );
}

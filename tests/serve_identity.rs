//! Cross-stream bit-identity: sharing the fleet must never change pixels.
//!
//! The serving layer packs many streams' jobs into one worker ring, but
//! every stream's forward/fuse/inverse arithmetic is confined to its own
//! engine's buffers and the combo-order accumulation is schedule-invariant,
//! so each stream's delivered pixel stream must be byte-identical to fusing
//! the same deterministic source alone on a serial engine — for every
//! fleet thread count, for mixed geometries, and regardless of which other
//! streams share the ring.

use wavefuse_core::serve::{solo_digest, FleetConfig, StreamBackend, StreamConfig, StreamManager};
use wavefuse_core::Backend;

const FRAMES: usize = 6;

/// Runs a fleet over `configs` and asserts every stream's digest equals
/// its solo (serial, pool-free) reference.
fn assert_fleet_matches_solo(threads: usize, columnar: bool, configs: &[StreamConfig]) {
    let mut mgr = StreamManager::new(FleetConfig {
        threads,
        columnar,
        max_in_flight: None,
    });
    mgr.set_digests(true);
    for cfg in configs {
        mgr.admit(*cfg).unwrap();
    }
    let report = mgr.run(FRAMES).unwrap();
    assert_eq!(report.total_drops, 0, "identity runs must not drop");
    for (i, cfg) in configs.iter().enumerate() {
        assert_eq!(mgr.stream_frames(i), FRAMES as u64, "stream {i} delivered");
        let solo = solo_digest(cfg, columnar, FRAMES).unwrap();
        assert_eq!(
            mgr.stream_digest(i),
            solo,
            "stream {i} ({:?} {:?} seed {}) diverged from its solo run \
             on a {threads}-thread fleet",
            cfg.frame_size,
            cfg.backend,
            cfg.scene_seed
        );
    }
}

/// Four same-shape NEON streams with distinct content.
fn uniform_fleet() -> Vec<StreamConfig> {
    (0..4)
        .map(|s| StreamConfig {
            scene_seed: 2016 + s,
            ..StreamConfig::default()
        })
        .collect()
}

/// Mixed geometries and mixed backends sharing one ring.
fn mixed_fleet() -> Vec<StreamConfig> {
    vec![
        StreamConfig {
            frame_size: (88, 72),
            scene_seed: 1,
            ..StreamConfig::default()
        },
        StreamConfig {
            frame_size: (64, 48),
            scene_seed: 2,
            ..StreamConfig::default()
        },
        StreamConfig {
            frame_size: (48, 40),
            backend: StreamBackend::Fixed(Backend::Arm),
            scene_seed: 3,
            ..StreamConfig::default()
        },
        StreamConfig {
            frame_size: (88, 72),
            scene_seed: 4,
            ..StreamConfig::default()
        },
    ]
}

#[test]
fn shared_fleet_is_bit_identical_to_solo_runs() {
    for threads in [1, 2, 4] {
        assert_fleet_matches_solo(threads, true, &uniform_fleet());
    }
}

#[test]
fn mixed_size_fleet_is_bit_identical_to_solo_runs() {
    for threads in [1, 2, 4] {
        assert_fleet_matches_solo(threads, true, &mixed_fleet());
    }
}

#[test]
fn staged_transpose_fallback_fleet_is_bit_identical() {
    // The non-columnar kernels take a different column-pass path; the
    // fleet must reproduce the matching solo reference there too.
    assert_fleet_matches_solo(2, false, &mixed_fleet());
}

#[test]
fn fleet_packing_leaves_digests_independent_of_neighbors() {
    // A stream's pixels must not depend on who shares the ring: the same
    // stream config digests identically in a 2-stream and a 5-stream
    // fleet.
    let target = StreamConfig {
        scene_seed: 777,
        ..StreamConfig::default()
    };
    let mut small = StreamManager::new(FleetConfig {
        threads: 2,
        ..FleetConfig::default()
    });
    small.set_digests(true);
    small.admit(target).unwrap();
    small
        .admit(StreamConfig {
            scene_seed: 1,
            ..StreamConfig::default()
        })
        .unwrap();
    small.run(FRAMES).unwrap();

    let mut large = StreamManager::new(FleetConfig {
        threads: 2,
        ..FleetConfig::default()
    });
    large.set_digests(true);
    large.admit(target).unwrap();
    for s in 0..4 {
        large
            .admit(StreamConfig {
                frame_size: if s % 2 == 0 { (64, 48) } else { (88, 72) },
                scene_seed: 10 + s,
                ..StreamConfig::default()
            })
            .unwrap();
    }
    large.run(FRAMES).unwrap();

    assert_eq!(small.stream_digest(0), large.stream_digest(0));
    assert_eq!(
        small.stream_digest(0),
        solo_digest(&target, true, FRAMES).unwrap()
    );
}

//! Property-based equivalence of the three compute backends.
//!
//! The paper's premise is that NEON and FPGA execution are *functionally
//! transparent* accelerations of the same algorithm. These properties pin
//! that down: for arbitrary images, all kernels produce the same pyramids,
//! and every backend round-trips (forward then inverse) to the input.

// Needs the external `proptest` crate, which the offline build cannot
// resolve: restore the dev-dependencies listed in the root Cargo.toml on
// a networked machine and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

use proptest::prelude::*;
use wavefuse_dtcwt::{Dtcwt, Dwt2d, FilterBank, FilterKernel, Image, ScalarKernel};
use wavefuse_simd::{AutoVecKernel, SimdKernel};
use wavefuse_zynq::FpgaKernel;

/// Strategy: a modest random image with finite values.
fn arb_image(max_edge: usize) -> impl Strategy<Value = Image> {
    (8usize..=max_edge, 8usize..=max_edge).prop_flat_map(|(w, h)| {
        proptest::collection::vec(-100.0f32..100.0, w * h)
            .prop_map(move |data| Image::from_vec(w, h, data).expect("sized"))
    })
}

fn pyramids_close(
    a: &wavefuse_dtcwt::CwtPyramid,
    b: &wavefuse_dtcwt::CwtPyramid,
    tol: f32,
) -> Result<(), String> {
    for level in 0..a.levels() {
        for (i, (x, y)) in a.subbands(level).iter().zip(b.subbands(level)).enumerate() {
            let dre = x.re.max_abs_diff(&y.re);
            let dim = x.im.max_abs_diff(&y.im);
            if dre > tol || dim > tol {
                return Err(format!("level {level} band {i}: re {dre} im {dim}"));
            }
        }
    }
    for (i, (x, y)) in a.lowpass().iter().zip(b.lowpass()).enumerate() {
        let d = x.max_abs_diff(y);
        if d > tol {
            return Err(format!("lowpass {i}: {d}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simd_matches_scalar_on_random_images(img in arb_image(48)) {
        let levels = 2.min(Dwt2d::max_levels(img.width(), img.height()));
        prop_assume!(levels >= 1);
        let t = Dtcwt::new(levels).unwrap();
        let p_ref = t.forward_with(&mut ScalarKernel::new(), &img).unwrap();
        let p_simd = t.forward_with(&mut SimdKernel::new(), &img).unwrap();
        let p_auto = t.forward_with(&mut AutoVecKernel::new(), &img).unwrap();
        pyramids_close(&p_ref, &p_simd, 5e-3).map_err(TestCaseError::fail)?;
        pyramids_close(&p_ref, &p_auto, 5e-3).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn fpga_matches_scalar_on_random_images(img in arb_image(40)) {
        let levels = 2.min(Dwt2d::max_levels(img.width(), img.height()));
        prop_assume!(levels >= 1);
        let t = Dtcwt::new(levels).unwrap();
        let p_ref = t.forward_with(&mut ScalarKernel::new(), &img).unwrap();
        let p_fpga = t.forward_with(&mut FpgaKernel::new(), &img).unwrap();
        pyramids_close(&p_ref, &p_fpga, 5e-3).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn every_backend_round_trips(img in arb_image(40)) {
        let levels = 2.min(Dwt2d::max_levels(img.width(), img.height()));
        prop_assume!(levels >= 1);
        let t = Dtcwt::new(levels).unwrap();
        let kernels: Vec<Box<dyn FilterKernel>> = vec![
            Box::new(ScalarKernel::new()),
            Box::new(SimdKernel::new()),
            Box::new(FpgaKernel::new()),
        ];
        for mut k in kernels {
            let pyr = t.forward_with(k.as_mut(), &img).unwrap();
            let back = t.inverse_with(k.as_mut(), &pyr).unwrap();
            let err = back.max_abs_diff(&img);
            prop_assert!(err < 2e-2, "{} reconstruction error {err}", k.name());
        }
    }

    #[test]
    fn plain_dwt_round_trips_on_random_banks(
        img in arb_image(40),
        bank_idx in 0usize..5,
    ) {
        let bank = match bank_idx {
            0 => FilterBank::haar(),
            1 => FilterBank::daubechies(2),
            2 => FilterBank::legall_5_3(),
            3 => FilterBank::cdf_9_7(),
            _ => FilterBank::near_sym_b(),
        }
        .unwrap();
        let levels = 2.min(Dwt2d::max_levels(img.width(), img.height()));
        prop_assume!(levels >= 1);
        let dwt = Dwt2d::new(bank, levels).unwrap();
        let pyr = dwt.forward(&img).unwrap();
        let back = dwt.inverse(&pyr).unwrap();
        prop_assert!(back.max_abs_diff(&img) < 2e-2);
    }
}

#[test]
fn ledger_is_deterministic_across_runs() {
    // The simulator must charge identical cycles for identical work.
    let img = Image::from_fn(40, 40, |x, y| ((x * y) % 29) as f32);
    let t = Dtcwt::new(3).unwrap();
    let run = || {
        let mut k = FpgaKernel::new();
        let _ = t.forward_with(&mut k, &img).unwrap();
        *k.ledger()
    };
    assert_eq!(run(), run());
}

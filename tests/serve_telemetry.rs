//! Serving-layer telemetry: per-stream Prometheus series with capped
//! label cardinality.
//!
//! Every stream exports its frame counter and capture-to-retire latency
//! histogram under a `stream="<id>"` label; streams beyond the first 16
//! fold into a single `stream="overflow"` series so a large fleet cannot
//! blow up the exporter's cardinality.

use std::sync::Arc;

use wavefuse::core::serve::{FleetConfig, StreamConfig, StreamManager};
use wavefuse::trace::{export, Telemetry};

#[test]
fn per_stream_series_are_exported_with_capped_cardinality() {
    let telemetry = Telemetry::shared();
    // Uncapped fleet: every stream delivers, so every label's frame
    // counter and latency histogram export. 18 streams: ids 0..=15 get
    // their own label, 16 and 17 fold into the overflow bucket.
    let mut mgr = StreamManager::new(FleetConfig {
        threads: 2,
        columnar: true,
        max_in_flight: None,
    });
    mgr.set_telemetry(Arc::clone(&telemetry));
    for s in 0..18 {
        mgr.admit(StreamConfig {
            frame_size: (48, 40),
            scene_seed: s as u64,
            ..StreamConfig::default()
        })
        .unwrap();
    }
    let report = mgr.run(3).unwrap();
    assert_eq!(report.total_drops, 0);

    // A second, tightly capped fleet on the same registry forces drops so
    // the labeled drop counter exports too.
    let mut capped = StreamManager::new(FleetConfig {
        threads: 2,
        columnar: true,
        max_in_flight: Some(2),
    });
    capped.set_telemetry(Arc::clone(&telemetry));
    for s in 0..4 {
        capped
            .admit(StreamConfig {
                frame_size: (48, 40),
                depth: 2,
                scene_seed: 50 + s,
                ..StreamConfig::default()
            })
            .unwrap();
    }
    assert!(
        capped.run(3).unwrap().total_drops > 0,
        "cap of 2 vs 8 demand"
    );

    let prom = export::prometheus_text(telemetry.metrics());
    for series in [
        "wavefuse_stream_frames_total{stream=\"0\"}",
        "wavefuse_stream_frames_total{stream=\"15\"}",
        "wavefuse_stream_frames_total{stream=\"overflow\"}",
    ] {
        assert!(
            prom.lines().any(|l| l.starts_with(series)),
            "missing {series}:\n{prom}"
        );
    }
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wavefuse_stream_drops_total{stream=\"")),
        "drop counter with a stream label:\n{prom}"
    );
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wavefuse_frame_latency_seconds_bucket{")
                && l.contains("stream=\"3\"")),
        "per-stream latency histogram:\n{prom}"
    );
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wavefuse_frame_latency_seconds_bucket{")
                && l.contains("stream=\"overflow\"")),
        "overflow latency histogram:\n{prom}"
    );
    // Cardinality cap: no raw ids past the bucket boundary ever export.
    for folded in ["stream=\"16\"", "stream=\"17\""] {
        assert!(
            !prom.contains(folded),
            "{folded} must fold into the overflow bucket:\n{prom}"
        );
    }
}

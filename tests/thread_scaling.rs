//! Thread-scaling tests: the worker pool must change the wall-clock, never
//! the pixels.
//!
//! Bit-identity is exact and deterministic, so it is asserted directly.
//! Speedup is a statement about the host machine, so the timing check uses
//! a best-of-N retry discipline: each attempt times the same steady-state
//! frame sequence at one and two threads, and the test passes as soon as
//! one attempt shows the two-thread run at least matching the one-thread
//! run. Only a machine where two threads *consistently* lose to one fails.

use std::time::Instant;

use wavefuse_core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse_core::Backend;
use wavefuse_dtcwt::Image;

fn pipeline(backend: Backend, threads: usize) -> VideoFusionPipeline {
    VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Fixed(backend),
        scene_seed: 2016,
        threads,
        depth: 1,
    })
    .expect("default geometry supports three levels")
}

fn fused_frames(backend: Backend, threads: usize, n: usize) -> Vec<Image> {
    let mut pipe = pipeline(backend, threads);
    (0..n).map(|_| pipe.step().expect("step").image).collect()
}

#[test]
fn threaded_pipeline_is_bit_identical_to_serial() {
    for backend in [Backend::Arm, Backend::Neon] {
        let serial = fused_frames(backend, 1, 6);
        for threads in [2, 4] {
            let pooled = fused_frames(backend, threads, 6);
            for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
                assert_eq!(
                    a, b,
                    "{backend:?} frame {i}: {threads}-thread output diverged from serial"
                );
            }
        }
    }
}

#[test]
fn two_threads_do_not_lose_to_one() {
    const WARMUP: usize = 3;
    const TIMED: usize = 12;
    const ATTEMPTS: usize = 5;

    let time_run = |threads: usize| {
        let mut pipe = pipeline(Backend::Arm, threads);
        for _ in 0..WARMUP {
            let out = pipe.step().expect("warm-up step");
            pipe.recycle(out);
        }
        let start = Instant::now();
        for _ in 0..TIMED {
            let out = pipe.step().expect("timed step");
            pipe.recycle(out);
        }
        start.elapsed().as_secs_f64()
    };

    let mut best = 0.0f64;
    for attempt in 0..ATTEMPTS {
        let t1 = time_run(1);
        let t2 = time_run(2);
        let speedup = t1 / t2;
        best = best.max(speedup);
        if speedup >= 1.0 {
            println!("attempt {attempt}: speedup {speedup:.2}x (t1 {t1:.4}s, t2 {t2:.4}s)");
            return;
        }
    }
    panic!("two threads never matched one across {ATTEMPTS} attempts (best {best:.2}x)");
}

//! Bit-identity of the transpose-free columnar column passes.
//!
//! The columnar kernels (`SimdKernel`, `AutoVecKernel`) filter the vertical
//! pass in place — SIMD lanes hold adjacent columns, rows are loaded
//! stride-1, and each lane accumulates one column's convolution. The
//! contract is *exact* equality with the transpose-staged fallback: the
//! per-row accumulation splits into four partial accumulators folded as
//! `(p0 + p2) + (p1 + p3)`, replicating the row path's pairwise
//! `horizontal_sum` order, so no float is added in a different order.
//!
//! This suite pins that contract at every layer visible from the workspace:
//! raw column passes for every named filter bank (odd/even widths and
//! heights, widths below the 4-lane group forcing the scalar tail), full
//! DT-CWT pyramids and round trips, and the threaded engine at 1/2/4
//! workers where the column pass runs as parallel per-strip jobs.

use wavefuse_core::{Backend, FusionEngine};
use wavefuse_dtcwt::dwt1d::{BankTaps, Phase};
use wavefuse_dtcwt::scratch::Scratch1d;
use wavefuse_dtcwt::{ColScratch, Dtcwt, FilterBank, FilterKernel, Image};
use wavefuse_simd::{AutoVecKernel, SimdKernel};

/// Every named bank the crate ships.
fn banks() -> Vec<FilterBank> {
    vec![
        FilterBank::haar().unwrap(),
        FilterBank::daubechies(2).unwrap(),
        FilterBank::daubechies(4).unwrap(),
        FilterBank::legall_5_3().unwrap(),
        FilterBank::cdf_9_7().unwrap(),
        FilterBank::near_sym_a().unwrap(),
        FilterBank::near_sym_b().unwrap(),
        FilterBank::qshift_b().unwrap(),
    ]
}

/// Column analysis + synthesis round trip through one kernel.
fn cols_round_trip(
    k: &mut dyn FilterKernel,
    taps: &BankTaps,
    phase: Phase,
    img: &Image,
) -> (Image, Image, Image) {
    let mut lo = Image::zeros(0, 0);
    let mut hi = Image::zeros(0, 0);
    let mut rec = Image::zeros(0, 0);
    let mut cs = ColScratch::new();
    let mut s1 = Scratch1d::new();
    k.analyze_cols(taps, phase, img, &mut lo, &mut hi, &mut cs, &mut s1)
        .expect("column analysis");
    k.synthesize_cols(taps, phase, &lo, &hi, &mut rec, &mut cs, &mut s1)
        .expect("column synthesis");
    (lo, hi, rec)
}

fn kernels() -> Vec<(&'static str, Box<dyn FilterKernel>)> {
    vec![
        ("simd", Box::new(SimdKernel::new())),
        ("autovec", Box::new(AutoVecKernel::new())),
    ]
}

// Widths 2 and 3 sit below the 4-lane group, so every column takes the
// scalar tail; 13 = 8 + 4 + 1 exercises all three lane groups at once.
// Heights must be even (the decimating pass halves them); odd heights are
// covered by `odd_heights_rejected_identically` below.
const DIMS: [(usize, usize); 6] = [(2, 8), (3, 12), (4, 6), (13, 10), (16, 22), (40, 36)];

#[test]
fn column_passes_bit_identical_for_every_bank() {
    for bank in banks() {
        let taps = BankTaps::new(&bank);
        for phase in [Phase::A, Phase::B] {
            for (w, h) in DIMS {
                let img = Image::from_fn(w, h, |x, y| ((x * 17 + y * 11) % 31) as f32 * 0.27 - 3.5);
                for (name, mut on) in kernels() {
                    let mut off = match name {
                        "simd" => Box::new(SimdKernel::new()) as Box<dyn FilterKernel>,
                        _ => Box::new(AutoVecKernel::new()),
                    };
                    off.set_columnar(false);
                    assert!(on.columnar(), "{name} must default to columnar");
                    assert!(!off.columnar());
                    let what = format!("{name} {} {phase:?} {w}x{h}", bank.name());
                    let (lo_c, hi_c, rec_c) = cols_round_trip(on.as_mut(), &taps, phase, &img);
                    let (lo_f, hi_f, rec_f) = cols_round_trip(off.as_mut(), &taps, phase, &img);
                    assert_eq!(lo_c.as_slice(), lo_f.as_slice(), "lo {what}");
                    assert_eq!(hi_c.as_slice(), hi_f.as_slice(), "hi {what}");
                    assert_eq!(rec_c.as_slice(), rec_f.as_slice(), "round trip {what}");
                }
            }
        }
    }
}

#[test]
fn odd_heights_rejected_identically() {
    // The decimating column pass needs an even height; both the columnar
    // path and the transpose fallback must refuse odd ones the same way.
    let taps = BankTaps::new(&FilterBank::near_sym_b().unwrap());
    let img = Image::from_fn(9, 7, |x, y| (x + y) as f32);
    let mut lo = Image::zeros(0, 0);
    let mut hi = Image::zeros(0, 0);
    let mut cs = ColScratch::new();
    let mut s1 = Scratch1d::new();
    for (name, mut k) in kernels() {
        let on = k
            .analyze_cols(&taps, Phase::A, &img, &mut lo, &mut hi, &mut cs, &mut s1)
            .is_err();
        k.set_columnar(false);
        let off = k
            .analyze_cols(&taps, Phase::A, &img, &mut lo, &mut hi, &mut cs, &mut s1)
            .is_err();
        assert!(on && off, "{name}: odd height must fail on both paths");
    }
}

#[test]
fn pyramids_and_round_trips_bit_identical() {
    // Full 3-level DT-CWT: forward pyramids and inverse reconstructions
    // must match the fallback bit for bit, including odd widths (the 86x72
    // level-0 geometry keeps widths even as required below level 0, while
    // 13-wide columns at depth 1 hit the scalar tail).
    let t3 = Dtcwt::new(3).expect("three levels");
    let t1 = Dtcwt::new(1).expect("one level");
    let cases: [(&Dtcwt, usize, usize); 3] = [(&t3, 88, 72), (&t3, 40, 36), (&t1, 13, 10)];
    for (t, w, h) in cases {
        let img = Image::from_fn(w, h, |x, y| ((x * 7 + y * 13) % 41) as f32 * 0.19);
        for (name, mut on) in kernels() {
            let mut off = match name {
                "simd" => Box::new(SimdKernel::new()) as Box<dyn FilterKernel>,
                _ => Box::new(AutoVecKernel::new()),
            };
            off.set_columnar(false);
            let p_on = t.forward_with(on.as_mut(), &img).expect("columnar forward");
            let p_off = t
                .forward_with(off.as_mut(), &img)
                .expect("fallback forward");
            for level in 0..t.levels() {
                for (a, b) in p_on.subbands(level).iter().zip(p_off.subbands(level)) {
                    assert_eq!(
                        a.re.as_slice(),
                        b.re.as_slice(),
                        "{name} re {w}x{h} L{level}"
                    );
                    assert_eq!(
                        a.im.as_slice(),
                        b.im.as_slice(),
                        "{name} im {w}x{h} L{level}"
                    );
                }
            }
            let r_on = t
                .inverse_with(on.as_mut(), &p_on)
                .expect("columnar inverse");
            let r_off = t
                .inverse_with(off.as_mut(), &p_off)
                .expect("fallback inverse");
            assert_eq!(r_on.as_slice(), r_off.as_slice(), "{name} inverse {w}x{h}");
        }
    }
}

#[test]
fn threaded_engine_matches_serial_at_every_width() {
    // The engine splits the column pass into per-strip worker jobs; at
    // 1, 2, and 4 threads the fused frame must equal the serial columnar
    // result and the serial transpose-fallback result exactly.
    let a = Image::from_fn(88, 72, |x, y| ((x * 5 + y * 3) % 37) as f32 * 0.4);
    let b = Image::from_fn(88, 72, |x, y| ((x * 11 + y * 2) % 43) as f32 * 0.3);

    let mut serial = FusionEngine::new(3).expect("engine");
    let reference = serial
        .fuse(&a, &b, Backend::Neon)
        .expect("serial fuse")
        .image;

    let mut fallback = FusionEngine::new(3).expect("engine");
    fallback.set_columnar(false);
    let fallback_img = fallback
        .fuse(&a, &b, Backend::Neon)
        .expect("fallback fuse")
        .image;
    assert_eq!(
        reference.as_slice(),
        fallback_img.as_slice(),
        "columnar vs transpose fallback (serial)"
    );

    for threads in [1usize, 2, 4] {
        let mut engine = FusionEngine::new(3).expect("engine");
        engine.set_threads(threads);
        assert!(engine.columnar(), "columnar must survive set_threads");
        let out = engine.fuse(&a, &b, Backend::Neon).expect("threaded fuse");
        assert_eq!(
            reference.as_slice(),
            out.image.as_slice(),
            "columnar strip jobs at {threads} threads"
        );
        // And the toggle keeps working on a live pool.
        engine.set_columnar(false);
        let off = engine
            .fuse(&a, &b, Backend::Neon)
            .expect("fallback threaded");
        assert_eq!(
            reference.as_slice(),
            off.image.as_slice(),
            "fallback at {threads} threads"
        );
    }
}

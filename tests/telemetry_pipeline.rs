//! Cross-crate telemetry integration: the traces and metrics emitted by an
//! instrumented pipeline run must agree with the pipeline's own statistics.

use std::sync::Arc;

use wavefuse::core::adaptive::{AdaptiveScheduler, Objective, Policy};
use wavefuse::core::engine::PHASE_NAMES;
use wavefuse::core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse::core::Backend;
use wavefuse::trace::json::JsonValue;
use wavefuse::trace::{export, MetricValue, Telemetry};

fn instrumented_run(frames: usize) -> (Arc<Telemetry>, wavefuse::core::pipeline::PipelineStats) {
    let telemetry = Telemetry::shared();
    let mut pipe = VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Adaptive(Box::new(AdaptiveScheduler::new(
            Policy::Online(Objective::Time),
            3,
        ))),
        scene_seed: 11,
        threads: 1,
        depth: 1,
    })
    .unwrap();
    pipe.set_telemetry(Arc::clone(&telemetry));
    for i in 0..frames {
        // A bursty thermal field every third step exercises the gate.
        pipe.step_with_burst(if i % 3 == 2 { 2 } else { 1 })
            .unwrap();
    }
    (telemetry, pipe.stats())
}

#[test]
fn phase_spans_sum_to_pipeline_phase_timing() {
    let (telemetry, stats) = instrumented_run(12);
    let events = telemetry.tracer().events();
    for (phase, stat_s) in stats.timing.phases() {
        let trace_s: f64 = events
            .iter()
            .filter(|e| e.category == "phase" && e.name == phase)
            .map(|e| e.model_dur_s)
            .sum();
        let err = (trace_s - stat_s).abs() / stat_s;
        assert!(
            err < 0.01,
            "{phase}: trace {trace_s:.9} vs stats {stat_s:.9} ({:.3}% off)",
            err * 100.0
        );
    }
}

#[test]
fn frame_spans_enclose_their_phase_spans() {
    let (telemetry, stats) = instrumented_run(6);
    let events = telemetry.tracer().events();
    let frames: Vec<_> = events
        .iter()
        .filter(|e| e.name == "frame" && e.category == "pipeline")
        .collect();
    assert_eq!(frames.len() as u64, stats.frames);
    for frame in &frames {
        let children: Vec<_> = events
            .iter()
            .filter(|e| e.parent == Some(frame.id) && e.category == "phase")
            .collect();
        assert_eq!(children.len(), PHASE_NAMES.len(), "4 phases per frame");
        let child_total: f64 = children.iter().map(|e| e.model_dur_s).sum();
        assert!(
            (child_total - frame.model_dur_s).abs() <= 1e-9 * child_total.max(1.0),
            "phases sum {child_total} vs frame span {}",
            frame.model_dur_s
        );
        for child in children {
            assert!(child.model_start_s >= frame.model_start_s - 1e-12);
            assert!(
                child.model_start_s + child.model_dur_s
                    <= frame.model_start_s + frame.model_dur_s + 1e-9
            );
        }
    }
}

#[test]
fn counters_match_pipeline_stats() {
    let (telemetry, stats) = instrumented_run(9);
    let series = telemetry.metrics().snapshot();
    let counter = |name: &str, backend: Option<&str>| -> f64 {
        series
            .iter()
            .filter(|(k, _)| {
                k.name == name
                    && backend
                        .is_none_or(|b| k.labels.iter().any(|(lk, lv)| lk == "backend" && lv == b))
            })
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                other => panic!("{name} should be a counter, got {other:?}"),
            })
            .sum()
    };
    assert_eq!(counter("wavefuse_frames_total", None) as u64, stats.frames);
    for backend in [Backend::Arm, Backend::Neon, Backend::Fpga, Backend::Hybrid] {
        assert_eq!(
            counter("wavefuse_frames_total", Some(backend.label())) as u64,
            stats.backend_usage[backend],
            "per-backend frame counter for {}",
            backend.label()
        );
    }
    assert_eq!(
        counter("wavefuse_gate_drops_total", None) as u64,
        stats.gate_drops
    );
}

#[test]
fn chrome_trace_of_a_run_parses_and_balances() {
    let (telemetry, stats) = instrumented_run(5);
    let text = export::chrome_trace(telemetry.tracer());
    let parsed = JsonValue::parse(&text).expect("exporter emits valid JSON");
    let JsonValue::Obj(top) = &parsed else {
        panic!("top level must be an object")
    };
    let Some(JsonValue::Arr(events)) = top.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v)
    else {
        panic!("traceEvents array missing")
    };
    // Sum the exported per-phase durations (µs) and compare with the
    // pipeline's accumulated modeled time.
    let mut phase_us = 0.0;
    for ev in events {
        let JsonValue::Obj(fields) = ev else { continue };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        if get("cat") == Some(&JsonValue::Str("phase".into())) {
            let Some(JsonValue::Num(dur)) = get("dur") else {
                panic!("phase span without dur")
            };
            phase_us += dur;
        }
    }
    let stats_us = stats.timing.total_seconds() * 1e6;
    let err = (phase_us - stats_us).abs() / stats_us;
    assert!(
        err < 0.01,
        "chrome phase spans {phase_us:.1} µs vs stats {stats_us:.1} µs"
    );
}

#[test]
fn prometheus_export_carries_the_acceptance_series() {
    let (telemetry, _) = instrumented_run(8);
    let prom = export::prometheus_text(telemetry.metrics());
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wavefuse_frames_total{")),
        "per-backend frame counters:\n{prom}"
    );
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wavefuse_frame_seconds_bucket{")),
        "frame-latency histogram:\n{prom}"
    );
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wavefuse_phase_seconds_bucket{")),
        "phase-latency histogram:\n{prom}"
    );
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wavefuse_pipeline_energy_millijoules")),
        "energy gauge:\n{prom}"
    );
    assert!(
        prom.lines()
            .any(|l| l.starts_with("wavefuse_gate_drops_total")),
        "gate-drop counter:\n{prom}"
    );
}

#[test]
fn scheduler_decisions_appear_in_the_trace() {
    let (telemetry, stats) = instrumented_run(7);
    let events = telemetry.tracer().events();
    let decisions = events
        .iter()
        .filter(|e| e.name == "scheduler_decision")
        .count() as u64;
    assert_eq!(decisions, stats.frames, "one decision event per frame");
    let observations = events
        .iter()
        .filter(|e| e.name == "scheduler_observe")
        .count() as u64;
    assert_eq!(observations, stats.frames, "one observation per frame");
}

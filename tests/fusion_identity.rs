//! Bit-identity of the strip-parallel, vectorized fusion stage.
//!
//! The fusion fold-order contract (see `wavefuse_dtcwt::fuse`) promises
//! that splitting a subband into row strips, fanning them out across the
//! work-stealing ring, and evaluating each strip with the SIMD kernel
//! reproduces the serial scalar reference bit for bit: the horizontal
//! and vertical window-energy folds are seeded and ordered identically,
//! and the vector lanes evaluate exactly the scalar expression tree.
//! These tests pin that promise at every layer — raw strip jobs on a
//! pool, the engine's pooled fusion path, depth-k pipelining, and the
//! shared-fleet serving path — across rules, window radii, thread
//! counts, strip widths and frame sizes.

use std::sync::Arc;

use wavefuse_core::engine::build_worker_pool;
use wavefuse_core::pipeline::{BackendChoice, PipelineConfig, VideoFusionPipeline};
use wavefuse_core::rules::{fuse_pyramids_into, FusionScratch, LowpassRule};
use wavefuse_core::serve::{solo_digest, FleetConfig, StreamConfig, StreamManager};
use wavefuse_core::{Backend, FusionEngine, FusionRule};
use wavefuse_dtcwt::{CwtPyramid, Dtcwt, Dwt2d, Image, Job, JobOutcome, JobPayload};
use wavefuse_simd::SimdKernel;

/// Every fusion rule the strips must reproduce, across window radii.
const RULES: [FusionRule; 6] = [
    FusionRule::MaxMagnitude,
    FusionRule::WindowEnergy { radius: 1 },
    FusionRule::WindowEnergy { radius: 2 },
    FusionRule::WindowEnergy { radius: 3 },
    FusionRule::Weighted { alpha: 0.25 },
    FusionRule::ActivityGuided {
        radius: 2,
        match_threshold: 0.75,
    },
];

fn inputs(w: usize, h: usize) -> (Image, Image) {
    (
        Image::from_fn(w, h, |x, y| ((x * 31 + y * 17) % 101) as f32 * 0.013 - 0.5),
        Image::from_fn(w, h, |x, y| ((x * 13 + y * 29) % 97) as f32 * 0.017 - 0.6),
    )
}

fn pyramids(w: usize, h: usize, levels: usize) -> (Arc<CwtPyramid>, Arc<CwtPyramid>) {
    let (ia, ib) = inputs(w, h);
    let t = Dtcwt::new(levels).expect("levels supported");
    let mut k = SimdKernel::new();
    let a = t.forward_with(&mut k, &ia).expect("forward a");
    let b = t.forward_with(&mut k, &ib).expect("forward b");
    (Arc::new(a), Arc::new(b))
}

/// Fuses `a`/`b` by submitting one `FuseStrip` job per `rows`-row strip
/// to `pool` (kernel slot 1 = SIMD) and assembling the outcomes, exactly
/// like the engine's pooled fusion dispatcher. Strips of one band are
/// submitted and drained together, so any `rows` works regardless of the
/// 64-slot ring capacity.
fn fuse_via_strips(
    pool: &wavefuse_dtcwt::WorkerPool,
    a: &Arc<CwtPyramid>,
    b: &Arc<CwtPyramid>,
    rule: FusionRule,
    rows: usize,
    fused: &mut CwtPyramid,
) -> usize {
    fused.reshape_like(a);
    let op = rule.to_op();
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    let mut total = 0;
    for level in 0..a.levels() {
        for band in 0..a.subbands(level).len() {
            let h = a.subbands(level)[band].re.height();
            let mut submitted = 0;
            let mut y0 = 0;
            while y0 < h {
                let y1 = (y0 + rows.max(1)).min(h);
                pool.submit(Job::FuseStrip {
                    a: Arc::clone(a),
                    b: Arc::clone(b),
                    tag: 7,
                    strip: submitted,
                    level,
                    band,
                    kernel: 1,
                    y0,
                    y1,
                    op,
                    re: Image::zeros(0, 0),
                    im: Image::zeros(0, 0),
                });
                submitted += 1;
                y0 = y1;
            }
            outcomes.clear();
            assert!(
                pool.drain(submitted, &mut outcomes).is_none(),
                "strip job failed"
            );
            total += submitted;
            for o in outcomes.drain(..) {
                let JobPayload::FuseStrip { y0, re, im } = o.payload else {
                    panic!("unexpected payload");
                };
                let sb = &mut fused.subbands_mut(level)[band];
                for yy in 0..re.height() {
                    sb.re.row_mut(y0 + yy).copy_from_slice(re.row(yy));
                    sb.im.row_mut(y0 + yy).copy_from_slice(im.row(yy));
                }
            }
        }
    }
    total
}

fn assert_subbands_bit_identical(a: &CwtPyramid, b: &CwtPyramid, what: &str) {
    for level in 0..a.levels() {
        for (i, (x, y)) in a.subbands(level).iter().zip(b.subbands(level)).enumerate() {
            assert_eq!(x.re, y.re, "{what}: level {level} band {i} re diverged");
            assert_eq!(x.im, y.im, "{what}: level {level} band {i} im diverged");
        }
    }
}

/// Raw strip jobs across the ring reproduce the serial scalar reference
/// bit for bit, for every rule, radius, thread count, strip width and a
/// mix of even/odd subband geometries.
#[test]
fn strip_jobs_match_scalar_reference_across_rules_threads_and_strip_widths() {
    for (w, h) in [(88, 72), (96, 80), (50, 38)] {
        let (a, b) = pyramids(w, h, 3.min(Dwt2d::max_levels(w, h)));
        let mut scratch = FusionScratch::new();
        let mut reference = CwtPyramid::empty();
        let mut strip_fused = CwtPyramid::empty();
        for rule in RULES {
            fuse_pyramids_into(
                &a,
                &b,
                rule,
                LowpassRule::Average,
                &mut scratch,
                &mut reference,
            );
            for threads in [1usize, 2, 4] {
                let pool = build_worker_pool(threads, true);
                for rows in [1usize, 3, 8, usize::MAX] {
                    let n = fuse_via_strips(&pool, &a, &b, rule, rows, &mut strip_fused);
                    assert!(n > 0);
                    assert_subbands_bit_identical(
                        &reference,
                        &strip_fused,
                        &format!("{w}x{h} {rule:?} threads={threads} rows={rows}"),
                    );
                }
            }
        }
    }
}

/// The engine's pooled fusion path (strip-parallel, SIMD) produces the
/// same fused frame as the serial engine, which fuses on the dispatcher
/// thread — and actually fans out strips when pooled.
#[test]
fn pooled_engine_fusion_is_bit_identical_to_serial() {
    let (ia, ib) = inputs(88, 72);
    for rule in RULES {
        for backend in [Backend::Neon, Backend::Arm] {
            let mut serial =
                FusionEngine::with_rules(3, rule, LowpassRule::Average).expect("engine");
            let reference = serial.fuse(&ia, &ib, backend).expect("serial fuse");
            assert_eq!(
                reference.fusion_strips, 0,
                "serial fusion must not fan out strips"
            );
            for threads in [2usize, 4] {
                let mut pooled =
                    FusionEngine::with_rules(3, rule, LowpassRule::Average).expect("engine");
                pooled.set_threads(threads);
                let out = pooled.fuse(&ia, &ib, backend).expect("pooled fuse");
                assert!(
                    out.fusion_strips > 0,
                    "{backend:?} threads={threads}: pooled fusion should run as strips"
                );
                assert_eq!(
                    reference.image, out.image,
                    "{rule:?} on {backend:?} with {threads} threads diverged from serial"
                );
            }
        }
    }
}

fn pipeline(threads: usize, depth: usize) -> VideoFusionPipeline {
    VideoFusionPipeline::new(PipelineConfig {
        frame_size: (88, 72),
        levels: 3,
        backend: BackendChoice::Fixed(Backend::Neon),
        scene_seed: 2016,
        threads,
        depth,
    })
    .expect("default geometry supports three levels")
}

/// Depth-k pipelining routes fusion through the same strip path between
/// the stashed inverses and the next forward batch; the delivered frame
/// stream must stay bit-identical to the serial pipeline under every
/// rule.
#[test]
fn depth_k_strip_fusion_is_bit_identical_to_serial() {
    for rule in [
        FusionRule::MaxMagnitude,
        FusionRule::WindowEnergy { radius: 2 },
    ] {
        let mut serial = pipeline(1, 1);
        serial.engine_mut().set_rule(rule);
        let reference: Vec<Image> = (0..6).map(|_| serial.step().expect("step").image).collect();
        for (threads, depth) in [(2usize, 1usize), (2, 2), (4, 3)] {
            let mut piped = pipeline(threads, depth);
            piped.engine_mut().set_rule(rule);
            for (i, want) in reference.iter().enumerate() {
                let got = piped.step().expect("piped step");
                assert_eq!(
                    want, &got.image,
                    "{rule:?} threads={threads} depth={depth} frame {i} diverged"
                );
                piped.recycle(got);
            }
            // The pooled pipeline really took the strip path.
            assert!(
                piped.flight_recorder().iter().any(|r| r.fusion_strips > 0),
                "threads={threads} depth={depth}: no frame fused via strips"
            );
        }
    }
}

/// A fleet-shared ring cannot host fusion waves (other streams' jobs are
/// interleaved), so fleet engines fuse with the vectorized kernel on the
/// dispatcher — and must still match the solo serial reference digest.
#[test]
fn serve_fleet_fusion_is_bit_identical_to_solo() {
    let configs: Vec<StreamConfig> = (0..3)
        .map(|s| StreamConfig {
            frame_size: if s == 1 { (64, 48) } else { (88, 72) },
            scene_seed: 4000 + s,
            ..StreamConfig::default()
        })
        .collect();
    let mut mgr = StreamManager::new(FleetConfig {
        threads: 2,
        columnar: true,
        max_in_flight: None,
    });
    mgr.set_digests(true);
    for cfg in &configs {
        mgr.admit(*cfg).unwrap();
    }
    let report = mgr.run(5).expect("serve window");
    assert_eq!(report.total_drops, 0);
    for (i, cfg) in configs.iter().enumerate() {
        assert_eq!(
            mgr.stream_digest(i),
            solo_digest(cfg, true, 5).unwrap(),
            "stream {i} diverged from its solo run"
        );
    }
}

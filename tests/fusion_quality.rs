//! Fusion-quality integration tests: the §I motivation ("the use of the
//! DT-CWT has been shown to produce significant fusion quality
//! improvement") measured with the standard metrics on the synthetic
//! dual-modality scene.

use wavefuse_core::baseline::{average_fusion, dwt_fusion, laplacian_fusion};
use wavefuse_core::rules::{FusionRule, LowpassRule};
use wavefuse_core::{Backend, FusionEngine};
use wavefuse_dtcwt::analysis::{
    circular_shift, dtcwt_shift_energy_variation, dwt_shift_energy_variation,
};
use wavefuse_dtcwt::{Dtcwt, Dwt2d, FilterBank, Image};
use wavefuse_metrics::{
    entropy, fusion_mutual_information, petrovic_qabf, spatial_frequency, ssim,
};
use wavefuse_video::scene::ScenePair;

fn scene_pair(w: usize, h: usize) -> (Image, Image) {
    let scene = ScenePair::new(77);
    (
        scene.render_visible(w, h, 0.0),
        scene.render_thermal(w, h, 0.0),
    )
}

fn dtcwt_fuse(a: &Image, b: &Image) -> Image {
    let mut engine = FusionEngine::with_rules(
        3,
        FusionRule::WindowEnergy { radius: 1 },
        LowpassRule::Average,
    )
    .unwrap();
    engine.fuse(a, b, Backend::Neon).unwrap().image
}

#[test]
fn fused_frame_keeps_information_from_both_sensors() {
    let (a, b) = scene_pair(88, 72);
    let fused = dtcwt_fuse(&a, &b);
    // The fused frame must share substantial information with each source.
    let mi_a = wavefuse_metrics::mutual_information(&a, &fused);
    let mi_b = wavefuse_metrics::mutual_information(&b, &fused);
    assert!(mi_a > 0.5, "MI with visible {mi_a}");
    assert!(mi_b > 0.5, "MI with thermal {mi_b}");
    // The lamp hotspot (thermal-only) and the stripes (visible-only) both
    // survive fusion.
    let lamp = fused.get((0.72 * 88.0) as usize, (0.22 * 72.0) as usize);
    let mean: f32 = fused.as_slice().iter().sum::<f32>() / fused.len() as f32;
    assert!(lamp > mean + 0.1, "thermal hotspot lost: {lamp} vs {mean}");
    let stripe_region: Vec<f32> = (8..26).map(|x| fused.get(x, 20)).collect();
    let spread = stripe_region.iter().cloned().fold(f32::MIN, f32::max)
        - stripe_region.iter().cloned().fold(f32::MAX, f32::min);
    assert!(spread > 0.2, "visible stripes lost: spread {spread}");
}

#[test]
fn dtcwt_fusion_beats_averaging_on_every_metric() {
    let (a, b) = scene_pair(88, 72);
    let ours = dtcwt_fuse(&a, &b);
    let avg = average_fusion(&a, &b);
    assert!(entropy(&ours) > entropy(&avg) - 0.1);
    assert!(spatial_frequency(&ours) > 1.2 * spatial_frequency(&avg));
    assert!(petrovic_qabf(&a, &b, &ours) > petrovic_qabf(&a, &b, &avg) + 0.1);
}

#[test]
fn dtcwt_fusion_is_competitive_with_transform_baselines() {
    let (a, b) = scene_pair(88, 72);
    let ours = dtcwt_fuse(&a, &b);
    let dwt = dwt_fusion(&a, &b, FilterBank::cdf_9_7().unwrap(), 3).unwrap();
    let lap = laplacian_fusion(&a, &b, 3).unwrap();
    // Within a few percent of the strongest baseline on edge preservation,
    // and at least as informative.
    let q_ours = petrovic_qabf(&a, &b, &ours);
    let q_best = petrovic_qabf(&a, &b, &dwt).max(petrovic_qabf(&a, &b, &lap));
    assert!(q_ours > 0.9 * q_best, "QABF ours {q_ours} vs best {q_best}");
    let mi_ours = fusion_mutual_information(&a, &b, &ours);
    let mi_dwt = fusion_mutual_information(&a, &b, &dwt);
    assert!(
        mi_ours >= 0.95 * mi_dwt,
        "MI ours {mi_ours} vs dwt {mi_dwt}"
    );
}

#[test]
fn dtcwt_fusion_is_more_shift_consistent_than_dwt_fusion() {
    // The shift-invariance argument for the DT-CWT, measured end to end:
    // fusing shifted inputs then unshifting should give (nearly) the same
    // frame; the decimated DWT is substantially worse at this.
    let (a, b) = scene_pair(64, 64);
    let base_cwt = dtcwt_fuse(&a, &b);
    let base_dwt = dwt_fusion(&a, &b, FilterBank::near_sym_b().unwrap(), 3).unwrap();

    let mut err_cwt = 0.0f64;
    let mut err_dwt = 0.0f64;
    for shift in 1..=4 {
        let sa = circular_shift(&a, shift, 0);
        let sb = circular_shift(&b, shift, 0);
        let f_cwt = circular_shift(&dtcwt_fuse(&sa, &sb), -shift, 0);
        let f_dwt = circular_shift(
            &dwt_fusion(&sa, &sb, FilterBank::near_sym_b().unwrap(), 3).unwrap(),
            -shift,
            0,
        );
        err_cwt += (1.0 - ssim(&base_cwt, &f_cwt)).max(0.0);
        err_dwt += (1.0 - ssim(&base_dwt, &f_dwt)).max(0.0);
    }
    assert!(
        err_cwt < 0.7 * err_dwt,
        "shift inconsistency: dtcwt {err_cwt:.4} vs dwt {err_dwt:.4}"
    );
}

#[test]
fn subband_energy_shift_invariance_advantage() {
    // The underlying transform property, asserted at the paper's frame size.
    let (a, _) = scene_pair(88, 72);
    let shifts: Vec<(isize, isize)> = (0..6).map(|k| (k, 0)).collect();
    let dtcwt = Dtcwt::new(3).unwrap();
    let dwt = Dwt2d::new(FilterBank::near_sym_b().unwrap(), 3).unwrap();
    for level in [1, 2] {
        let v_cwt = dtcwt_shift_energy_variation(&dtcwt, &a, &shifts, level).unwrap();
        let v_dwt = dwt_shift_energy_variation(&dwt, &a, &shifts, level).unwrap();
        assert!(
            v_cwt < 0.5 * v_dwt,
            "level {level}: dt-cwt cv {v_cwt:.4} vs dwt cv {v_dwt:.4}"
        );
    }
}

#[test]
fn dtcwt_fused_video_flickers_less_than_dwt_fused_video() {
    // Video fusion under smooth sub-feature motion: shift-variant DWT
    // coefficient selection flips winners frame to frame, adding flicker
    // that the near-shift-invariant DT-CWT avoids.
    let (a0, b0) = scene_pair(64, 64);
    let mut cwt_frames = Vec::new();
    let mut dwt_frames = Vec::new();
    let mut src_frames = Vec::new();
    for t in 0..6 {
        let a = circular_shift(&a0, t, 0);
        let b = circular_shift(&b0, t, 0);
        // Unshift outputs so residual differences are pure fusion jitter.
        cwt_frames.push(circular_shift(&dtcwt_fuse(&a, &b), -t, 0));
        dwt_frames.push(circular_shift(
            &dwt_fusion(&a, &b, FilterBank::near_sym_b().unwrap(), 3).unwrap(),
            -t,
            0,
        ));
        src_frames.push(circular_shift(&a, -t, 0));
    }
    let flicker_src = wavefuse_metrics::temporal_instability(&src_frames);
    let flicker_cwt = wavefuse_metrics::temporal_instability(&cwt_frames);
    let flicker_dwt = wavefuse_metrics::temporal_instability(&dwt_frames);
    assert!(flicker_src < 1e-12, "unshifted sources are static");
    assert!(
        flicker_cwt < 0.5 * flicker_dwt,
        "dt-cwt flicker {flicker_cwt:.2e} vs dwt {flicker_dwt:.2e}"
    );
}

#[test]
fn fusing_a_frame_with_itself_is_nearly_identity() {
    let (a, _) = scene_pair(64, 48);
    let fused = dtcwt_fuse(&a, &a);
    assert!(fused.max_abs_diff(&a) < 5e-3);
    assert!(ssim(&a, &fused) > 0.999);
}
